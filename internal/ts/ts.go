// Package ts provides the finite transition-system intermediate
// representation the threat instrumentor compiles models into and the
// model checker verifies: variables over finite symbolic domains, an
// initial assignment, and guarded-command rules with interleaving
// semantics. Conditions and assignments are symbolic so that the very
// same structure can be model-checked in-process and rendered as an SMV
// description (the paper's model generator "outputs a SMV description of
// the model").
package ts

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Var is a finite-domain variable.
type Var struct {
	Name   string
	Domain []string
}

// State is a packed assignment: one domain index per variable, in the
// system's variable order.
type State []uint8

// Key returns a hashable identity for the state.
func (s State) Key() string { return string(s) }

// Clone copies the state.
func (s State) Clone() State {
	out := make(State, len(s))
	copy(out, s)
	return out
}

// Cond is a boolean condition over a state.
type Cond interface {
	Eval(sys *System, s State) bool
	// SMV renders the condition in nuXmv-style syntax.
	SMV() string
}

// Eq tests Var == Value.
type Eq struct{ Var, Value string }

// Eval implements Cond.
func (e Eq) Eval(sys *System, s State) bool { return sys.Get(s, e.Var) == e.Value }

// SMV implements Cond.
func (e Eq) SMV() string { return fmt.Sprintf("%s = %s", e.Var, e.Value) }

// Neq tests Var != Value.
type Neq struct{ Var, Value string }

// Eval implements Cond.
func (n Neq) Eval(sys *System, s State) bool { return sys.Get(s, n.Var) != n.Value }

// SMV implements Cond.
func (n Neq) SMV() string { return fmt.Sprintf("%s != %s", n.Var, n.Value) }

// In tests Var ∈ Values.
type In struct {
	Var    string
	Values []string
}

// Eval implements Cond.
func (i In) Eval(sys *System, s State) bool {
	v := sys.Get(s, i.Var)
	for _, want := range i.Values {
		if v == want {
			return true
		}
	}
	return false
}

// SMV implements Cond.
func (i In) SMV() string {
	return fmt.Sprintf("%s in {%s}", i.Var, strings.Join(i.Values, ", "))
}

// And is conjunction; empty And is true.
type And []Cond

// Eval implements Cond.
func (a And) Eval(sys *System, s State) bool {
	for _, c := range a {
		if !c.Eval(sys, s) {
			return false
		}
	}
	return true
}

// SMV implements Cond.
func (a And) SMV() string {
	if len(a) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(a))
	for i, c := range a {
		parts[i] = "(" + c.SMV() + ")"
	}
	return strings.Join(parts, " & ")
}

// Or is disjunction; empty Or is false.
type Or []Cond

// Eval implements Cond.
func (o Or) Eval(sys *System, s State) bool {
	for _, c := range o {
		if c.Eval(sys, s) {
			return true
		}
	}
	return false
}

// SMV implements Cond.
func (o Or) SMV() string {
	if len(o) == 0 {
		return "FALSE"
	}
	parts := make([]string, len(o))
	for i, c := range o {
		parts[i] = "(" + c.SMV() + ")"
	}
	return strings.Join(parts, " | ")
}

// Not is negation.
type Not struct{ C Cond }

// Eval implements Cond.
func (n Not) Eval(sys *System, s State) bool { return !n.C.Eval(sys, s) }

// SMV implements Cond.
func (n Not) SMV() string { return "!(" + n.C.SMV() + ")" }

// True is the constant true condition.
type True struct{}

// Eval implements Cond.
func (True) Eval(*System, State) bool { return true }

// SMV implements Cond.
func (True) SMV() string { return "TRUE" }

// Assign sets Var := Value when the rule fires.
type Assign struct{ Var, Value string }

// Rule is one guarded command. Name identifies the rule in
// counterexamples; the CEGAR loop prunes rules by name.
type Rule struct {
	Name    string
	Guard   Cond
	Assigns []Assign
	// Tags carries analysis metadata (e.g. adversary action descriptors
	// for the CPV feasibility check); ignored by the checker itself.
	Tags map[string]string
}

// System is the complete transition system.
type System struct {
	Name string

	vars     []Var
	varIdx   map[string]int
	valIdx   []map[string]uint8
	initVals map[string]string
	rules    []Rule
	// gen counts structural mutations (variables, initial values, rules).
	// Exploration caches key on it: a cached reachability graph is valid
	// exactly while the generation it was built against is current.
	gen uint64
}

// Generation reports the system's mutation counter. Every structural
// edit — AddVar, SetInit, AddRule, RemoveRule, MapRules — bumps it, so
// callers caching derived artifacts (compiled rules, reachability
// graphs) can detect staleness without diffing the system.
func (sys *System) Generation() uint64 { return sys.gen }

// NewSystem creates an empty system.
func NewSystem(name string) *System {
	return &System{
		Name:     name,
		varIdx:   make(map[string]int),
		initVals: make(map[string]string),
	}
}

// AddVar declares a variable with its finite domain. The first domain
// value is the default initial value.
func (sys *System) AddVar(name string, domain ...string) error {
	if len(domain) == 0 {
		return fmt.Errorf("ts: variable %s has empty domain", name)
	}
	if len(domain) > 255 {
		return fmt.Errorf("ts: variable %s domain exceeds 255 values", name)
	}
	if _, dup := sys.varIdx[name]; dup {
		return fmt.Errorf("ts: variable %s already declared", name)
	}
	seen := make(map[string]uint8, len(domain))
	for i, v := range domain {
		if _, dup := seen[v]; dup {
			return fmt.Errorf("ts: variable %s has duplicate domain value %s", name, v)
		}
		seen[v] = uint8(i)
	}
	sys.varIdx[name] = len(sys.vars)
	sys.vars = append(sys.vars, Var{Name: name, Domain: domain})
	sys.valIdx = append(sys.valIdx, seen)
	sys.gen++
	return nil
}

// SetInit sets the initial value of a declared variable.
func (sys *System) SetInit(name, value string) error {
	idx, ok := sys.varIdx[name]
	if !ok {
		return fmt.Errorf("ts: unknown variable %s", name)
	}
	if _, ok := sys.valIdx[idx][value]; !ok {
		return fmt.Errorf("ts: value %s not in domain of %s", value, name)
	}
	sys.initVals[name] = value
	sys.gen++
	return nil
}

// AddRule appends a guarded command; assignments are validated eagerly.
func (sys *System) AddRule(r Rule) error {
	if r.Name == "" {
		return errors.New("ts: rule must be named")
	}
	for _, a := range r.Assigns {
		idx, ok := sys.varIdx[a.Var]
		if !ok {
			return fmt.Errorf("ts: rule %s assigns unknown variable %s", r.Name, a.Var)
		}
		if _, ok := sys.valIdx[idx][a.Value]; !ok {
			return fmt.Errorf("ts: rule %s assigns %s a value outside its domain: %s", r.Name, a.Var, a.Value)
		}
	}
	if r.Guard == nil {
		r.Guard = True{}
	}
	sys.rules = append(sys.rules, r)
	sys.gen++
	return nil
}

// RemoveRule deletes a rule by exact name; used by CEGAR refinement. It
// reports whether the rule existed.
func (sys *System) RemoveRule(name string) bool {
	for i, r := range sys.rules {
		if r.Name == name {
			sys.rules = append(sys.rules[:i], sys.rules[i+1:]...)
			sys.gen++
			return true
		}
	}
	return false
}

// MapRules rewrites every rule through f; used by CEGAR refinements that
// strengthen guards or add assignments. The rewritten rules are not
// re-validated, so f must keep variables and values well-formed.
func (sys *System) MapRules(f func(Rule) Rule) {
	for i := range sys.rules {
		sys.rules[i] = f(sys.rules[i])
	}
	sys.gen++
}

// Rules returns the rule list (shared slice; callers must not mutate).
func (sys *System) Rules() []Rule { return sys.rules }

// RuleByName retrieves a rule.
func (sys *System) RuleByName(name string) (Rule, bool) {
	for _, r := range sys.rules {
		if r.Name == name {
			return r, true
		}
	}
	return Rule{}, false
}

// Vars returns the declared variables in order.
func (sys *System) Vars() []Var { return sys.vars }

// Get reads a variable's symbolic value from a state.
func (sys *System) Get(s State, name string) string {
	idx, ok := sys.varIdx[name]
	if !ok || idx >= len(s) {
		return ""
	}
	return sys.vars[idx].Domain[s[idx]]
}

// Set writes a variable's symbolic value into a state in place.
func (sys *System) Set(s State, name, value string) error {
	idx, ok := sys.varIdx[name]
	if !ok {
		return fmt.Errorf("ts: unknown variable %s", name)
	}
	vi, ok := sys.valIdx[idx][value]
	if !ok {
		return fmt.Errorf("ts: value %s not in domain of %s", value, name)
	}
	s[idx] = vi
	return nil
}

// InitialState packs the initial assignment.
func (sys *System) InitialState() State {
	s := make(State, len(sys.vars))
	for name, val := range sys.initVals {
		idx := sys.varIdx[name]
		s[idx] = sys.valIdx[idx][val]
	}
	return s
}

// Enabled reports whether rule r can fire in s.
func (sys *System) Enabled(r Rule, s State) bool { return r.Guard.Eval(sys, s) }

// Apply fires rule r on s and returns the successor.
func (sys *System) Apply(r Rule, s State) State {
	out := s.Clone()
	for _, a := range r.Assigns {
		idx := sys.varIdx[a.Var]
		out[idx] = sys.valIdx[idx][a.Value]
	}
	return out
}

// Successors enumerates (rule, successor) pairs for every enabled rule.
func (sys *System) Successors(s State) []Succ {
	var out []Succ
	for i := range sys.rules {
		r := &sys.rules[i]
		if r.Guard.Eval(sys, s) {
			out = append(out, Succ{Rule: r, State: sys.Apply(*r, s)})
		}
	}
	return out
}

// Succ is one outgoing edge of the reachability graph.
type Succ struct {
	Rule  *Rule
	State State
}

// CompiledRule is a rule lowered to index arithmetic for fast
// exploration: guards and assignments reference variable slots directly
// instead of going through name lookups.
type CompiledRule struct {
	Name  string
	Tags  map[string]string
	guard func(State) bool
	sets  []compiledAssign
}

type compiledAssign struct {
	idx int
	val uint8
}

// Enabled reports whether the compiled rule can fire in s.
func (cr *CompiledRule) Enabled(s State) bool { return cr.guard(s) }

// Apply fires the compiled rule, returning a fresh successor state.
func (cr *CompiledRule) Apply(s State) State {
	out := s.Clone()
	for _, a := range cr.sets {
		out[a.idx] = a.val
	}
	return out
}

// CompileRules lowers every rule for fast exploration. It returns an
// error when a condition references unknown variables or values, which
// would silently evaluate to false in the interpreted path.
func (sys *System) CompileRules() ([]CompiledRule, error) {
	out := make([]CompiledRule, 0, len(sys.rules))
	for _, r := range sys.rules {
		g, err := sys.compileCond(r.Guard)
		if err != nil {
			return nil, fmt.Errorf("ts: compiling rule %s: %w", r.Name, err)
		}
		cr := CompiledRule{Name: r.Name, Tags: r.Tags, guard: g}
		for _, a := range r.Assigns {
			idx, ok := sys.varIdx[a.Var]
			if !ok {
				return nil, fmt.Errorf("ts: compiling rule %s: unknown variable %s", r.Name, a.Var)
			}
			val, ok := sys.valIdx[idx][a.Value]
			if !ok {
				return nil, fmt.Errorf("ts: compiling rule %s: value %s outside domain of %s", r.Name, a.Value, a.Var)
			}
			cr.sets = append(cr.sets, compiledAssign{idx: idx, val: val})
		}
		out = append(out, cr)
	}
	return out, nil
}

// lookup resolves (var, value) to slot indices for compilation.
func (sys *System) lookup(varName, value string) (int, uint8, error) {
	idx, ok := sys.varIdx[varName]
	if !ok {
		return 0, 0, fmt.Errorf("unknown variable %s", varName)
	}
	val, ok := sys.valIdx[idx][value]
	if !ok {
		return 0, 0, fmt.Errorf("value %s outside domain of %s", value, varName)
	}
	return idx, val, nil
}

func (sys *System) compileCond(c Cond) (func(State) bool, error) {
	switch cc := c.(type) {
	case nil:
		return func(State) bool { return true }, nil
	case True:
		return func(State) bool { return true }, nil
	case Eq:
		// A value outside the domain can never be assigned: the test is
		// constantly false (matching interpreted semantics, and letting
		// generic properties mention states a given model lacks).
		idx, val, err := sys.lookup(cc.Var, cc.Value)
		if err != nil {
			if _, ok := sys.varIdx[cc.Var]; !ok {
				return nil, err
			}
			return func(State) bool { return false }, nil
		}
		return func(s State) bool { return s[idx] == val }, nil
	case Neq:
		idx, val, err := sys.lookup(cc.Var, cc.Value)
		if err != nil {
			if _, ok := sys.varIdx[cc.Var]; !ok {
				return nil, err
			}
			return func(State) bool { return true }, nil
		}
		return func(s State) bool { return s[idx] != val }, nil
	case In:
		idx, ok := sys.varIdx[cc.Var]
		if !ok {
			return nil, fmt.Errorf("unknown variable %s", cc.Var)
		}
		var mask [256]bool
		for _, v := range cc.Values {
			if val, ok := sys.valIdx[idx][v]; ok {
				mask[val] = true
			}
		}
		return func(s State) bool { return mask[s[idx]] }, nil
	case And:
		subs := make([]func(State) bool, len(cc))
		for i, sub := range cc {
			f, err := sys.compileCond(sub)
			if err != nil {
				return nil, err
			}
			subs[i] = f
		}
		return func(s State) bool {
			for _, f := range subs {
				if !f(s) {
					return false
				}
			}
			return true
		}, nil
	case Or:
		subs := make([]func(State) bool, len(cc))
		for i, sub := range cc {
			f, err := sys.compileCond(sub)
			if err != nil {
				return nil, err
			}
			subs[i] = f
		}
		return func(s State) bool {
			for _, f := range subs {
				if f(s) {
					return true
				}
			}
			return false
		}, nil
	case Not:
		f, err := sys.compileCond(cc.C)
		if err != nil {
			return nil, err
		}
		return func(s State) bool { return !f(s) }, nil
	default:
		// Fall back to interpreted evaluation for unknown condition types.
		return func(s State) bool { return c.Eval(sys, s) }, nil
	}
}

// CompileCond exposes condition compilation for the model checker's
// property predicates.
func (sys *System) CompileCond(c Cond) (func(State) bool, error) {
	return sys.compileCond(c)
}

// Assignments renders a state as a name->value map for reporting.
func (sys *System) Assignments(s State) map[string]string {
	out := make(map[string]string, len(sys.vars))
	for i, v := range sys.vars {
		out[v.Name] = v.Domain[s[i]]
	}
	return out
}

// Clone deep-copies the system so CEGAR refinements (rule pruning, guard
// strengthening, even new monitor variables) cannot affect the original.
func (sys *System) Clone() *System {
	out := &System{
		Name:     sys.Name,
		vars:     make([]Var, len(sys.vars)),
		varIdx:   make(map[string]int, len(sys.varIdx)),
		valIdx:   make([]map[string]uint8, len(sys.valIdx)),
		initVals: make(map[string]string, len(sys.initVals)),
		rules:    make([]Rule, len(sys.rules)),
	}
	copy(out.vars, sys.vars)
	for k, v := range sys.varIdx {
		out.varIdx[k] = v
	}
	for i, m := range sys.valIdx {
		cp := make(map[string]uint8, len(m))
		for k, v := range m {
			cp[k] = v
		}
		out.valIdx[i] = cp
	}
	for k, v := range sys.initVals {
		out.initVals[k] = v
	}
	copy(out.rules, sys.rules)
	return out
}

// SMV renders the system as a nuXmv-style module: enumerated VAR
// declarations, ASSIGN init clauses, and a TRANS relation that is the
// disjunction of the guarded commands (plus a stutter step).
func (sys *System) SMV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- generated by prochecker from model %q\n", sys.Name)
	b.WriteString("MODULE main\nVAR\n")
	for _, v := range sys.vars {
		fmt.Fprintf(&b, "  %s : {%s};\n", v.Name, strings.Join(v.Domain, ", "))
	}
	b.WriteString("ASSIGN\n")
	names := make([]string, 0, len(sys.vars))
	for _, v := range sys.vars {
		names = append(names, v.Name)
	}
	for _, v := range sys.vars {
		init := sys.initVals[v.Name]
		if init == "" {
			init = v.Domain[0]
		}
		fmt.Fprintf(&b, "  init(%s) := %s;\n", v.Name, init)
	}
	b.WriteString("TRANS\n")
	var disjuncts []string
	for _, r := range sys.rules {
		assigned := make(map[string]string, len(r.Assigns))
		for _, a := range r.Assigns {
			assigned[a.Var] = a.Value
		}
		var parts []string
		parts = append(parts, "("+r.Guard.SMV()+")")
		for _, name := range names {
			if val, ok := assigned[name]; ok {
				parts = append(parts, fmt.Sprintf("next(%s) = %s", name, val))
			} else {
				parts = append(parts, fmt.Sprintf("next(%s) = %s", name, name))
			}
		}
		disjuncts = append(disjuncts, fmt.Sprintf("  -- rule %s\n  (%s)", r.Name, strings.Join(parts, " & ")))
	}
	// Stutter keeps the relation total.
	var stutter []string
	for _, name := range names {
		stutter = append(stutter, fmt.Sprintf("next(%s) = %s", name, name))
	}
	disjuncts = append(disjuncts, "  -- stutter\n  ("+strings.Join(stutter, " & ")+")")
	b.WriteString(strings.Join(disjuncts, " |\n"))
	b.WriteString(";\n")
	return b.String()
}

// Stats summarises the system.
func (sys *System) Stats() string {
	product := 1.0
	for _, v := range sys.vars {
		product *= float64(len(v.Domain))
	}
	return fmt.Sprintf("system %s: %d vars, %d rules, %.3g potential states",
		sys.Name, len(sys.vars), len(sys.rules), product)
}

// SortedVarNames lists variable names alphabetically (for deterministic
// reporting).
func (sys *System) SortedVarNames() []string {
	out := make([]string, 0, len(sys.vars))
	for _, v := range sys.vars {
		out = append(out, v.Name)
	}
	sort.Strings(out)
	return out
}
