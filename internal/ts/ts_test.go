package ts

import (
	"strings"
	"testing"
)

func buildToy(t *testing.T) *System {
	t.Helper()
	sys := NewSystem("toy")
	for _, err := range []error{
		sys.AddVar("light", "red", "green"),
		sys.AddVar("cars", "stopped", "moving"),
		sys.SetInit("light", "red"),
		sys.SetInit("cars", "stopped"),
		sys.AddRule(Rule{
			Name:    "turn_green",
			Guard:   Eq{"light", "red"},
			Assigns: []Assign{{"light", "green"}},
		}),
		sys.AddRule(Rule{
			Name:    "go",
			Guard:   And{Eq{"light", "green"}, Eq{"cars", "stopped"}},
			Assigns: []Assign{{"cars", "moving"}},
		}),
		sys.AddRule(Rule{
			Name:    "turn_red",
			Guard:   Eq{"light", "green"},
			Assigns: []Assign{{"light", "red"}, {"cars", "stopped"}},
		}),
	} {
		if err != nil {
			t.Fatalf("building toy system: %v", err)
		}
	}
	return sys
}

func TestAddVarValidation(t *testing.T) {
	sys := NewSystem("v")
	if err := sys.AddVar("x"); err == nil {
		t.Error("empty domain accepted")
	}
	if err := sys.AddVar("y", "a", "a"); err == nil {
		t.Error("duplicate domain value accepted")
	}
	if err := sys.AddVar("z", "a"); err != nil {
		t.Fatalf("AddVar: %v", err)
	}
	if err := sys.AddVar("z", "b"); err == nil {
		t.Error("duplicate variable accepted")
	}
}

func TestSetInitValidation(t *testing.T) {
	sys := NewSystem("v")
	if err := sys.AddVar("x", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.SetInit("nope", "a"); err == nil {
		t.Error("unknown variable accepted")
	}
	if err := sys.SetInit("x", "c"); err == nil {
		t.Error("out-of-domain init accepted")
	}
}

func TestAddRuleValidation(t *testing.T) {
	sys := NewSystem("v")
	if err := sys.AddVar("x", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddRule(Rule{}); err == nil {
		t.Error("unnamed rule accepted")
	}
	if err := sys.AddRule(Rule{Name: "r", Assigns: []Assign{{"nope", "a"}}}); err == nil {
		t.Error("assignment to unknown variable accepted")
	}
	if err := sys.AddRule(Rule{Name: "r", Assigns: []Assign{{"x", "zzz"}}}); err == nil {
		t.Error("out-of-domain assignment accepted")
	}
	// Nil guard becomes True.
	if err := sys.AddRule(Rule{Name: "r", Assigns: []Assign{{"x", "b"}}}); err != nil {
		t.Fatalf("AddRule: %v", err)
	}
	r, ok := sys.RuleByName("r")
	if !ok || !r.Guard.Eval(sys, sys.InitialState()) {
		t.Error("nil guard did not default to True")
	}
}

func TestInitialStateAndGetSet(t *testing.T) {
	sys := buildToy(t)
	s := sys.InitialState()
	if sys.Get(s, "light") != "red" || sys.Get(s, "cars") != "stopped" {
		t.Errorf("initial = %v", sys.Assignments(s))
	}
	if err := sys.Set(s, "light", "green"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if sys.Get(s, "light") != "green" {
		t.Error("Set did not apply")
	}
	if err := sys.Set(s, "light", "blue"); err == nil {
		t.Error("out-of-domain Set accepted")
	}
	if sys.Get(s, "missing") != "" {
		t.Error("Get of unknown variable should be empty")
	}
}

func TestEnabledAndApply(t *testing.T) {
	sys := buildToy(t)
	s := sys.InitialState()
	r, _ := sys.RuleByName("turn_green")
	if !sys.Enabled(r, s) {
		t.Fatal("turn_green should be enabled initially")
	}
	s2 := sys.Apply(r, s)
	if sys.Get(s2, "light") != "green" {
		t.Error("Apply did not assign")
	}
	if sys.Get(s, "light") != "red" {
		t.Error("Apply mutated the input state")
	}
	goRule, _ := sys.RuleByName("go")
	if sys.Enabled(goRule, s) {
		t.Error("go enabled under red light")
	}
}

func TestSuccessors(t *testing.T) {
	sys := buildToy(t)
	succs := sys.Successors(sys.InitialState())
	if len(succs) != 1 || succs[0].Rule.Name != "turn_green" {
		t.Errorf("initial successors = %v", succs)
	}
}

func TestCondCombinators(t *testing.T) {
	sys := buildToy(t)
	s := sys.InitialState()
	tests := []struct {
		name string
		c    Cond
		want bool
	}{
		{"eq true", Eq{"light", "red"}, true},
		{"eq false", Eq{"light", "green"}, false},
		{"neq", Neq{"light", "green"}, true},
		{"in hit", In{"light", []string{"green", "red"}}, true},
		{"in miss", In{"light", []string{"green"}}, false},
		{"and empty", And{}, true},
		{"or empty", Or{}, false},
		{"not", Not{Eq{"light", "red"}}, false},
		{"true", True{}, true},
		{"or mixed", Or{Eq{"light", "green"}, Eq{"cars", "stopped"}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.c.Eval(sys, s); got != tt.want {
				t.Errorf("Eval = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRemoveRule(t *testing.T) {
	sys := buildToy(t)
	if !sys.RemoveRule("go") {
		t.Fatal("RemoveRule(go) = false")
	}
	if sys.RemoveRule("go") {
		t.Error("second RemoveRule(go) = true")
	}
	if _, ok := sys.RuleByName("go"); ok {
		t.Error("removed rule still present")
	}
	if len(sys.Rules()) != 2 {
		t.Errorf("rules = %d, want 2", len(sys.Rules()))
	}
}

func TestSMVOutput(t *testing.T) {
	sys := buildToy(t)
	smv := sys.SMV()
	for _, want := range []string{
		"MODULE main",
		"light : {red, green};",
		"init(light) := red;",
		"TRANS",
		"-- rule turn_green",
		"next(light) = green",
		"next(cars) = cars",
		"-- stutter",
	} {
		if !strings.Contains(smv, want) {
			t.Errorf("SMV output missing %q:\n%s", want, smv)
		}
	}
}

func TestStateKeyAndClone(t *testing.T) {
	sys := buildToy(t)
	s := sys.InitialState()
	c := s.Clone()
	if s.Key() != c.Key() {
		t.Error("clone has different key")
	}
	c[0] = 1
	if s.Key() == c.Key() {
		t.Error("clone aliases original")
	}
}

func TestStatsMentionsCounts(t *testing.T) {
	sys := buildToy(t)
	stats := sys.Stats()
	if !strings.Contains(stats, "2 vars") || !strings.Contains(stats, "3 rules") {
		t.Errorf("Stats = %q", stats)
	}
}

// TestGenerationBumpsOnStructuralEdits pins the mutation counter the
// exploration caches key on: every structural edit bumps it, reads and
// failed edits leave it alone, and a clone starts an independent line.
func TestGenerationBumpsOnStructuralEdits(t *testing.T) {
	sys := NewSystem("gen")
	g0 := sys.Generation()
	if err := sys.AddVar("x", "a", "b"); err != nil {
		t.Fatal(err)
	}
	if sys.Generation() <= g0 {
		t.Fatal("AddVar did not bump the generation")
	}
	g1 := sys.Generation()
	if err := sys.SetInit("x", "b"); err != nil {
		t.Fatal(err)
	}
	if sys.Generation() <= g1 {
		t.Fatal("SetInit did not bump the generation")
	}
	g2 := sys.Generation()
	if err := sys.AddRule(Rule{Name: "r", Guard: Eq{"x", "a"}, Assigns: []Assign{{"x", "b"}}}); err != nil {
		t.Fatal(err)
	}
	if sys.Generation() <= g2 {
		t.Fatal("AddRule did not bump the generation")
	}
	g3 := sys.Generation()
	if sys.RemoveRule("absent") {
		t.Fatal("RemoveRule of absent rule reported success")
	}
	if sys.Generation() != g3 {
		t.Error("failed RemoveRule bumped the generation")
	}
	sys.MapRules(func(r Rule) Rule { return r })
	if sys.Generation() <= g3 {
		t.Error("MapRules did not bump the generation")
	}
	g4 := sys.Generation()
	if !sys.RemoveRule("r") {
		t.Fatal("RemoveRule failed")
	}
	if sys.Generation() <= g4 {
		t.Error("RemoveRule did not bump the generation")
	}
	g5 := sys.Generation()
	clone := sys.Clone()
	gc := clone.Generation()
	if err := clone.AddVar("y", "0"); err != nil {
		t.Fatal(err)
	}
	if clone.Generation() <= gc {
		t.Error("clone edits do not bump its generation")
	}
	if sys.Generation() != g5 {
		t.Error("editing the clone disturbed the original's generation")
	}
}
