package conformance

import (
	"fmt"
	"sort"
	"strings"

	"prochecker/internal/spec"
	"prochecker/internal/trace"
)

// Coverage quantifies how much of the NAS layer a test-suite run
// exercised: handler signatures (incoming and outgoing message handlers)
// and protocol states. The paper reports this number for the open-source
// stacks (84% for srsLTE after adding 9 cases).
type Coverage struct {
	// HandlersSeen / HandlersTotal cover the incoming+outgoing message
	// handler signatures of the layer.
	HandlersSeen  int
	HandlersTotal int
	// StatesSeen / StatesTotal cover the EMM states of the layer.
	StatesSeen  int
	StatesTotal int
	// MissedHandlers and MissedStates list what was not exercised, so the
	// FSM's blind spots are explicit (the paper: the extracted model "can
	// also be used to enhance testing by detecting missing test cases").
	MissedHandlers []string
	MissedStates   []string
}

// Percent is the combined coverage ratio in [0,100].
func (c Coverage) Percent() float64 {
	total := c.HandlersTotal + c.StatesTotal
	if total == 0 {
		return 0
	}
	return 100 * float64(c.HandlersSeen+c.StatesSeen) / float64(total)
}

// String renders a one-line summary.
func (c Coverage) String() string {
	return fmt.Sprintf("NAS coverage %.0f%% (handlers %d/%d, states %d/%d)",
		c.Percent(), c.HandlersSeen, c.HandlersTotal, c.StatesSeen, c.StatesTotal)
}

// ComputeCoverage measures NAS-layer coverage of a log against the UE
// signature universe for the given naming style.
func ComputeCoverage(log trace.Log, style spec.SignatureStyle) Coverage {
	sig := spec.UESignatures(style)

	seenFuncs := make(map[string]bool)
	seenStates := make(map[string]bool)
	for _, rec := range log {
		switch rec.Kind {
		case trace.KindFuncEntry:
			seenFuncs[rec.Name] = true
		case trace.KindGlobal:
			if norm, ok := spec.NormalizeStateName(rec.Value); ok {
				seenStates[norm] = true
			}
		}
	}

	var cov Coverage
	var handlerUniverse []string
	for fn := range sig.Incoming {
		handlerUniverse = append(handlerUniverse, fn)
	}
	for fn := range sig.Outgoing {
		handlerUniverse = append(handlerUniverse, fn)
	}
	sort.Strings(handlerUniverse)
	cov.HandlersTotal = len(handlerUniverse)
	for _, fn := range handlerUniverse {
		if seenFuncs[fn] {
			cov.HandlersSeen++
		} else {
			cov.MissedHandlers = append(cov.MissedHandlers, fn)
		}
	}

	states := sig.States
	sort.Strings(states)
	cov.StatesTotal = len(states)
	for _, st := range states {
		if seenStates[st] {
			cov.StatesSeen++
		} else {
			cov.MissedStates = append(cov.MissedStates, st)
		}
	}
	return cov
}

// MissingTestHints suggests what kind of test case would cover each miss,
// supporting the paper's claim that the extracted model helps detect
// missing test cases.
func (c Coverage) MissingTestHints() []string {
	var hints []string
	for _, fn := range c.MissedHandlers {
		verb := "exercise handler"
		if strings.Contains(fn, "send") {
			verb = "trigger a scenario that makes the UE emit"
		}
		hints = append(hints, fmt.Sprintf("add a test case to %s %s", verb, fn))
	}
	for _, st := range c.MissedStates {
		hints = append(hints, fmt.Sprintf("add a test case that drives the UE into %s", st))
	}
	return hints
}
