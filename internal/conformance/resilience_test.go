package conformance

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"prochecker/internal/channel"
	"prochecker/internal/resilience"
	"prochecker/internal/spec"
	"prochecker/internal/ue"
)

func TestPanickingCaseIsIsolated(t *testing.T) {
	cases := []TestCase{
		{Name: "tc_ok_before", Procedure: spec.ProcAttach, Run: func(e *Env) error { return e.Attach() }},
		{Name: "tc_panics", Procedure: spec.ProcAttach, Run: func(e *Env) error { panic("boom") }},
		{Name: "tc_ok_after", Procedure: spec.ProcAttach, Run: func(e *Env) error { return e.Attach() }},
	}
	rep, err := Run(ue.ProfileConformant, cases)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(rep.Results))
	}
	if rep.Results[0].Err != nil || rep.Results[2].Err != nil {
		t.Errorf("healthy cases failed: %v / %v", rep.Results[0].Err, rep.Results[2].Err)
	}
	pe := rep.Results[1].Err
	if pe == nil {
		t.Fatal("panicking case reported no error")
	}
	if !errors.Is(pe, resilience.ErrCasePanic) {
		t.Errorf("panic error not tagged ErrCasePanic: %v", pe)
	}
	if rep.Passed() != 2 {
		t.Errorf("Passed = %d, want 2", rep.Passed())
	}
}

func TestEnvFailureRecordedPerCase(t *testing.T) {
	// An invalid profile makes NewEnv fail for every case; the suite
	// must record each failure and keep going instead of aborting.
	bad := ue.Profile(99)
	cases := []TestCase{
		{Name: "tc_a", Run: func(e *Env) error { return nil }},
		{Name: "tc_b", Run: func(e *Env) error { return nil }},
	}
	rep, err := Run(bad, cases)
	if err != nil {
		t.Fatalf("Run returned suite-level error: %v", err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2 (suite aborted early?)", len(rep.Results))
	}
	for _, res := range rep.Results {
		if res.Err == nil {
			t.Errorf("case %s: env failure not recorded", res.Name)
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	cases := []TestCase{
		{Name: "tc_first", Run: func(e *Env) error { ran++; cancel(); return nil }},
		{Name: "tc_never", Run: func(e *Env) error { ran++; return nil }},
	}
	rep, err := RunContext(ctx, ue.ProfileConformant, cases, RunOptions{})
	if err == nil || !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if ran != 1 {
		t.Errorf("%d cases ran after cancellation, want 1", ran)
	}
	if len(rep.Results) != 1 {
		t.Errorf("partial report has %d results, want 1", len(rep.Results))
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunContext(ctx, ue.ProfileConformant, SuiteFor(ue.ProfileConformant, true), RunOptions{})
	if !errors.Is(err, resilience.ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("already-cancelled run executed %d cases", len(rep.Results))
	}
}

// TestSeededFaultRunIsReproducible is the regression for the
// determinism guarantee: two suite runs under the same drop+corrupt
// fault seed must produce byte-for-byte identical logs and identical
// per-case outcomes.
func TestSeededFaultRunIsReproducible(t *testing.T) {
	cfg := channel.FaultConfig{Seed: 42, Drop: 0.10, Corrupt: 0.10}
	run := func() *Report {
		rep, err := RunSuiteContext(context.Background(), ue.ProfileSRS, true,
			RunOptions{Adversary: cfg.AdversaryFactory()})
		if err != nil {
			t.Fatalf("RunSuiteContext: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Log.Render() != b.Log.Render() {
		t.Error("seeded fault runs produced different logs")
	}
	if fmt.Sprint(a.Coverage) != fmt.Sprint(b.Coverage) {
		t.Error("seeded fault runs produced different coverage")
	}
	if len(a.Results) != len(b.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		ra, rb := a.Results[i], b.Results[i]
		if ra.Name != rb.Name || (ra.Err == nil) != (rb.Err == nil) || ra.Faults != rb.Faults {
			t.Errorf("case %d diverged: %+v vs %+v", i, ra, rb)
		}
		if ra.Err != nil && rb.Err != nil && ra.Err.Error() != rb.Err.Error() {
			t.Errorf("case %s error text diverged:\n  %v\n  %v", ra.Name, ra.Err, rb.Err)
		}
	}
	if a.FaultCount() != b.FaultCount() {
		t.Errorf("fault counts differ: %d vs %d", a.FaultCount(), b.FaultCount())
	}
}

// TestFaultedSuiteSurvives is the acceptance check that a full
// conformance run under seeded drop+corrupt fault injection completes
// without a process crash and reports failures per case.
func TestFaultedSuiteSurvives(t *testing.T) {
	cfg := channel.FaultConfig{Seed: 7, Drop: 0.25, Corrupt: 0.25}
	rep, err := RunSuiteContext(context.Background(), ue.ProfileSRS, true,
		RunOptions{Adversary: cfg.AdversaryFactory()})
	if err != nil {
		t.Fatalf("faulted suite returned suite-level error: %v", err)
	}
	if len(rep.Results) != len(SuiteFor(ue.ProfileSRS, true)) {
		t.Errorf("suite ran %d of %d cases", len(rep.Results), len(SuiteFor(ue.ProfileSRS, true)))
	}
	if rep.FaultCount() == 0 {
		t.Error("no faults injected at p=0.25")
	}
	// Under this much loss at least one case should fail functionally —
	// recorded in its CaseResult, not fatal.
	if rep.Passed() == len(rep.Results) {
		t.Log("note: every case passed despite faults (unusually lucky seed)")
	}
}
