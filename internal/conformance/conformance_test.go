package conformance

import (
	"testing"

	"time"

	"prochecker/internal/channel"
	"prochecker/internal/nas"
	"prochecker/internal/spec"
	"prochecker/internal/trace"
	"prochecker/internal/ue"
)

func TestAttachAllProfiles(t *testing.T) {
	for _, p := range []ue.Profile{ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI} {
		t.Run(p.String(), func(t *testing.T) {
			env, err := NewEnv(p, nil)
			if err != nil {
				t.Fatalf("NewEnv: %v", err)
			}
			if err := env.Attach(); err != nil {
				t.Fatalf("Attach: %v", err)
			}
		})
	}
}

// TestFullSuitePassesOnEveryProfile is the headline functional check: all
// conformance cases complete on all three implementations (deviations are
// behavioural, not functional failures).
func TestFullSuitePassesOnEveryProfile(t *testing.T) {
	for _, p := range []ue.Profile{ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI} {
		t.Run(p.String(), func(t *testing.T) {
			rep, err := Run(p, Cases())
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, res := range rep.Results {
				if res.Err != nil {
					t.Errorf("case %s: %v", res.Name, res.Err)
				}
			}
			if rep.Passed() != len(Cases()) {
				t.Errorf("passed %d/%d", rep.Passed(), len(Cases()))
			}
		})
	}
}

func TestSuiteSizesMatchPaperStructure(t *testing.T) {
	all := len(Cases())
	if added := all - len(SuiteFor(ue.ProfileSRS, false)); added != 9 {
		t.Errorf("srsLTE added cases = %d, want 9 (paper)", added)
	}
	if added := all - len(SuiteFor(ue.ProfileOAI, false)); added != 7 {
		t.Errorf("OAI added cases = %d, want 7 (paper)", added)
	}
	if got := len(SuiteFor(ue.ProfileConformant, false)); got != all {
		t.Errorf("closed-source suite = %d cases, want full catalogue %d", got, all)
	}
}

func TestCoverageImprovesWithAddedCases(t *testing.T) {
	base, err := RunSuite(ue.ProfileSRS, false)
	if err != nil {
		t.Fatalf("base run: %v", err)
	}
	full, err := RunSuite(ue.ProfileSRS, true)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	if full.Coverage.Percent() <= base.Coverage.Percent() {
		t.Errorf("coverage with added cases (%.0f%%) not above base (%.0f%%)",
			full.Coverage.Percent(), base.Coverage.Percent())
	}
	// Paper shape: the extended suite reaches roughly the 84% ballpark.
	if got := full.Coverage.Percent(); got < 70 || got > 100 {
		t.Errorf("extended coverage = %.0f%%, want within [70,100]", got)
	}
}

func TestCoverageHintsNameMisses(t *testing.T) {
	rep, err := RunSuite(ue.ProfileOAI, true)
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	hints := rep.Coverage.MissingTestHints()
	if len(hints) != len(rep.Coverage.MissedHandlers)+len(rep.Coverage.MissedStates) {
		t.Errorf("hints = %d, want one per miss", len(hints))
	}
}

func TestLogContainsTestBoundariesAndSignatures(t *testing.T) {
	rep, err := Run(ue.ProfileConformant, Cases()[:1])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var haveTC, haveRecv, haveSend, haveState bool
	for _, rec := range rep.Log {
		switch rec.Kind {
		case trace.KindTestCase:
			haveTC = true
		case trace.KindFuncEntry:
			if rec.Name == "recv_attach_accept" {
				haveRecv = true
			}
			if rec.Name == "send_attach_complete" {
				haveSend = true
			}
		case trace.KindGlobal:
			if rec.Value == string(spec.EMMRegistered) {
				haveState = true
			}
		}
	}
	if !haveTC || !haveRecv || !haveSend || !haveState {
		t.Errorf("log misses expected records: tc=%v recv=%v send=%v state=%v",
			haveTC, haveRecv, haveSend, haveState)
	}
}

func TestProfileBehaviouralDifferences(t *testing.T) {
	// The same replay drive ends differently per profile — the substance
	// of I1. Attach, send one protected message, then replay it.
	replayAccepted := func(t *testing.T, p ue.Profile) bool {
		t.Helper()
		env, err := NewEnv(p, nil)
		if err != nil {
			t.Fatalf("NewEnv: %v", err)
		}
		if err := env.Attach(); err != nil {
			t.Fatalf("Attach: %v", err)
		}
		before := env.UE.GUTI()
		cmd, err := env.MME.StartGUTIReallocation()
		if err != nil {
			t.Fatalf("StartGUTIReallocation: %v", err)
		}
		env.SendDownlink(cmd)
		after := env.UE.GUTI()
		if after == before {
			t.Fatal("setup: reallocation did not apply")
		}
		// Tamper-free replay of the same command. A UE that accepts it
		// re-applies the (now old) GUTI value; detect acceptance by
		// first moving the GUTI forward again.
		cmd2, err := env.MME.StartGUTIReallocation()
		if err != nil {
			t.Fatalf("StartGUTIReallocation 2: %v", err)
		}
		env.SendDownlink(cmd2)
		env.InjectDownlink(cmd) // replay of the first command
		return env.UE.GUTI() == after
	}
	if replayAccepted(t, ue.ProfileConformant) {
		t.Error("conformant profile accepted a replayed command")
	}
	if !replayAccepted(t, ue.ProfileSRS) {
		t.Error("srs profile rejected the replay; I1 not reproduced")
	}
}

func TestPumpTerminatesUnderDuplicatingAdversary(t *testing.T) {
	// A malicious adversary that duplicates every packet must not hang
	// the pump: the round bound caps delivery.
	dup := channel.AdversaryFunc(func(_ channel.Direction, p nas.Packet) []nas.Packet {
		return []nas.Packet{p, p}
	})
	env, err := NewEnv(ue.ProfileConformant, dup)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	req, err := env.UE.StartAttach()
	if err != nil {
		t.Fatalf("StartAttach: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		env.SendUplink(req)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Pump did not terminate under duplicating adversary")
	}
}
