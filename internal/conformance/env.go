// Package conformance provides the functional conformance test suite
// ProChecker's model extraction piggybacks on (Section IV-A): an
// environment wiring an instrumented UE to an MME over the channel pair,
// a catalogue of per-procedure NAS test cases, a runner that executes a
// suite and produces the information-rich log, and a NAS-layer coverage
// tracker.
//
// As in the paper, the test cases are *functional*: they drive protocol
// procedures and assert only liveness-style outcomes. Security verdicts
// come later, from the FSM extracted out of the log and the verification
// pipeline — which is exactly why the same infrastructure serves both
// functional and security testing.
package conformance

import (
	"errors"
	"fmt"

	"prochecker/internal/channel"
	"prochecker/internal/mme"
	"prochecker/internal/nas"
	"prochecker/internal/security"
	"prochecker/internal/spec"
	"prochecker/internal/trace"
	"prochecker/internal/ue"
)

// DefaultIMSI is the subscriber identity used across the test
// environment.
const DefaultIMSI = "001010123456789"

// DefaultTAC is the tracking area the test MME serves.
const DefaultTAC uint16 = 0x2A

// defaultUECaps is the capability bitmap of the test UE.
const defaultUECaps uint8 = 0x7

// maxPumpRounds bounds message-delivery loops against ping-pong bugs.
const maxPumpRounds = 64

// Env is one UE-MME test environment with an adversary-controllable link.
type Env struct {
	UE   *ue.UE
	MME  *mme.MME
	Link *channel.Pair
	// Rec is the UE-side recorder whose log the extractor consumes.
	Rec *trace.Recorder
	// K is the shared subscriber key, exposed for attack tooling.
	K security.Key
}

// NewEnv builds an environment for the given UE profile. adv may be nil
// for a benign link.
func NewEnv(profile ue.Profile, adv channel.Adversary) (*Env, error) {
	switch profile {
	case ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI:
	default:
		// ue.New would silently fall back to the conformant quirks; a
		// suite run against a profile we cannot faithfully emulate must
		// fail its cases instead.
		return nil, fmt.Errorf("conformance: unsupported profile %v", profile)
	}
	rec := &trace.Recorder{}
	k := security.KeyFromBytes([]byte("conformance-subscriber-key"))
	u, err := ue.New(ue.Config{
		Profile:  profile,
		IMSI:     DefaultIMSI,
		K:        k,
		Recorder: rec,
		UECaps:   defaultUECaps,
	})
	if err != nil {
		return nil, fmt.Errorf("conformance: building UE: %w", err)
	}
	m, err := mme.New(mme.Config{
		Subscribers: map[string]security.Key{DefaultIMSI: k},
		TAC:         DefaultTAC,
	})
	if err != nil {
		return nil, fmt.Errorf("conformance: building MME: %w", err)
	}
	return &Env{UE: u, MME: m, Link: channel.NewPair(adv), Rec: rec, K: k}, nil
}

// SendUplink puts a UE-originated packet on the air and pumps until the
// exchange quiesces.
func (e *Env) SendUplink(p nas.Packet) {
	e.Link.Send(channel.Uplink, p)
	e.Pump()
}

// SendDownlink puts an MME-originated packet on the air and pumps.
func (e *Env) SendDownlink(p nas.Packet) {
	e.Link.Send(channel.Downlink, p)
	e.Pump()
}

// InjectDownlink places an adversary-crafted packet directly on the
// downlink (bypassing the adversary's own interception) and pumps.
func (e *Env) InjectDownlink(p nas.Packet) {
	e.Link.Inject(channel.Downlink, p)
	e.Pump()
}

// InjectUplink places an adversary-crafted packet on the uplink and
// pumps.
func (e *Env) InjectUplink(p nas.Packet) {
	e.Link.Inject(channel.Uplink, p)
	e.Pump()
}

// Pump delivers queued packets in both directions until the system
// quiesces (or the safety bound trips, indicating a protocol ping-pong).
func (e *Env) Pump() {
	for round := 0; round < maxPumpRounds; round++ {
		progressed := false
		if p, ok := e.Link.Recv(channel.Uplink); ok {
			progressed = true
			for _, resp := range e.MME.HandleUplink(p) {
				e.Link.Send(channel.Downlink, resp)
			}
		}
		if p, ok := e.Link.Recv(channel.Downlink); ok {
			progressed = true
			for _, resp := range e.UE.HandleDownlink(p) {
				e.Link.Send(channel.Uplink, resp)
			}
		}
		if !progressed {
			return
		}
	}
}

// Attach runs the complete attach procedure (attach_request, AKA,
// security mode, attach_accept/complete) and verifies both sides landed
// in their registered states.
func (e *Env) Attach() error {
	req, err := e.UE.StartAttach()
	if err != nil {
		return fmt.Errorf("conformance: starting attach: %w", err)
	}
	e.SendUplink(req)
	if got := e.UE.State(); got != spec.EMMRegistered {
		return fmt.Errorf("conformance: after attach UE state = %s, want %s", got, spec.EMMRegistered)
	}
	if got := e.MME.State(); got != spec.MMERegistered {
		return fmt.Errorf("conformance: after attach MME state = %s, want %s", got, spec.MMERegistered)
	}
	if e.UE.GUTI() == 0 || e.UE.GUTI() != e.MME.GUTI() {
		return fmt.Errorf("conformance: GUTI mismatch after attach: ue=%#x mme=%#x", e.UE.GUTI(), e.MME.GUTI())
	}
	if !e.UE.SecurityContextActive() || !e.MME.SecurityContextActive() {
		return errors.New("conformance: security context not active after attach")
	}
	if e.UE.Keys() != e.MME.Keys() {
		return errors.New("conformance: UE and MME derived different key hierarchies")
	}
	return nil
}

// ExpectUEState asserts the UE's EMM state.
func (e *Env) ExpectUEState(want spec.EMMState) error {
	if got := e.UE.State(); got != want {
		return fmt.Errorf("conformance: UE state = %s, want %s", got, want)
	}
	return nil
}

// ExpectUERegistered asserts the UE is in EMM_REGISTERED or one of its
// sub-states.
func (e *Env) ExpectUERegistered() error {
	if !e.UE.Registered() {
		return fmt.Errorf("conformance: UE state = %s, want registered", e.UE.State())
	}
	return nil
}

// ExpectMMEState asserts the MME's EMM state.
func (e *Env) ExpectMMEState(want spec.MMEState) error {
	if got := e.MME.State(); got != want {
		return fmt.Errorf("conformance: MME state = %s, want %s", got, want)
	}
	return nil
}
