package conformance

import (
	"errors"
	"fmt"

	"prochecker/internal/channel"
	"prochecker/internal/nas"
	"prochecker/internal/spec"
	"prochecker/internal/ue"
)

// TestCase is one functional conformance test case. Run drives the
// protocol through the environment; its error reports *functional*
// failures only (procedure did not complete as the standard requires for
// a benign run). Behavioural deviations that are security-relevant are
// deliberately not asserted here — they surface in the extracted FSM.
type TestCase struct {
	// Name follows the tc_ convention of 3GPP TS 36.523 test cases.
	Name string
	// Procedure is the NAS procedure primarily exercised.
	Procedure spec.ProcedureName
	// AddedSRS / AddedOAI mark the procedure-specific cases the paper's
	// authors had to add to the open-source stacks' suites (9 for
	// srsLTE, 7 for OAI); the closed-source suite contains everything.
	AddedSRS bool
	AddedOAI bool
	// Run executes the case.
	Run func(*Env) error
}

// replayCaptured re-injects previously captured downlink packets matching
// the filter.
func replayCaptured(e *Env, match func(nas.Packet) bool) int {
	n := 0
	for _, p := range e.Link.Captured(channel.Downlink) {
		if match == nil || match(p) {
			e.InjectDownlink(p)
			n++
		}
	}
	return n
}

// Cases returns the full conformance catalogue in a stable order.
func Cases() []TestCase {
	return []TestCase{
		{
			Name:      "tc_attach_basic",
			Procedure: spec.ProcAttach,
			Run: func(e *Env) error {
				return e.Attach()
			},
		},
		{
			Name:      "tc_attach_then_reattach_with_guti",
			Procedure: spec.ProcAttach,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				// Detach and attach again, now holding a GUTI.
				req, err := e.UE.StartDetach(false)
				if err != nil {
					return err
				}
				e.SendUplink(req)
				if err := e.ExpectUEState(spec.EMMDeregistered); err != nil {
					return err
				}
				return e.Attach()
			},
		},
		{
			Name:      "tc_auth_mac_failure",
			Procedure: spec.ProcAuthentication,
			AddedSRS:  true,
			AddedOAI:  true,
			Run: func(e *Env) error {
				// A challenge that fails AUTN verification must be
				// answered with auth_mac_failure, not accepted.
				bogus := &nas.AuthRequest{}
				bogus.RAND[0] = 0xAA
				bogus.AUTN[0] = 0xBB
				pkt, err := (&nas.Context{}).Seal(bogus, nas.HeaderPlain, nas.DirDownlink)
				if err != nil {
					return err
				}
				e.InjectDownlink(pkt)
				if e.UE.SecurityContextActive() {
					return errors.New("UE activated security from an invalid challenge")
				}
				return e.ExpectUEState(spec.EMMDeregistered)
			},
		},
		{
			Name:      "tc_auth_sync_failure_resync",
			Procedure: spec.ProcAuthentication,
			AddedSRS:  true,
			AddedOAI:  true,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				// Re-authenticate so the USIM has consumed two distinct
				// challenges.
				reauth, err := e.MME.StartReauthentication()
				if err != nil {
					return err
				}
				e.SendDownlink(reauth)
				isChallenge := func(p nas.Packet) bool {
					if p.Header != nas.HeaderPlain {
						return false
					}
					m, err := nas.Unmarshal(p.Payload)
					return err == nil && m.Name() == spec.AuthRequest
				}
				var challenges []nas.Packet
				for _, p := range e.Link.Captured(channel.Downlink) {
					if isChallenge(p) {
						challenges = append(challenges, p)
					}
				}
				if len(challenges) < 2 {
					return fmt.Errorf("captured %d challenges, want >= 2", len(challenges))
				}
				// Replaying the OLDER consumed challenge: its SQN differs
				// from the last accepted one, so every stack (including
				// srsUE) answers auth_sync_failure and the network
				// resynchronises.
				e.InjectDownlink(challenges[0])
				// Replaying the NEWEST consumed challenge: a conformant
				// stack answers auth_sync_failure too; srsUE's I3 quirk
				// accepts the identical SQN and resets its counters — the
				// extracted FSM records whichever happened.
				e.InjectDownlink(challenges[len(challenges)-1])
				return nil
			},
		},
		{
			Name:      "tc_auth_reject_blocks_ue",
			Procedure: spec.ProcAuthentication,
			Run: func(e *Env) error {
				// The attach_request is lost; an authentication_reject
				// arrives during the attach attempt.
				e.Link.SetAdversary(&channel.DropFilter{
					Dir:   channel.Uplink,
					Match: func(nas.Packet) bool { return true },
					Limit: 1,
				})
				req, err := e.UE.StartAttach()
				if err != nil {
					return err
				}
				e.SendUplink(req)
				pkt, err := (&nas.Context{}).Seal(&nas.AuthReject{}, nas.HeaderPlain, nas.DirDownlink)
				if err != nil {
					return err
				}
				e.InjectDownlink(pkt)
				if !e.UE.Blocked() {
					return errors.New("auth_reject did not block the UE")
				}
				if _, err := e.UE.StartAttach(); err == nil {
					return errors.New("blocked UE attempted attach")
				}
				return nil
			},
		},
		{
			Name:      "tc_smc_caps_mismatch_rejected",
			Procedure: spec.ProcSecurityMode,
			AddedSRS:  true,
			Run: func(e *Env) error {
				// A man in the middle strips capabilities from
				// attach_request; the SMC's replayed caps then mismatch
				// and the UE must send security_mode_reject.
				e.Link.SetAdversary(channel.AdversaryFunc(func(dir channel.Direction, p nas.Packet) []nas.Packet {
					if dir != channel.Uplink || p.Header != nas.HeaderPlain {
						return []nas.Packet{p}
					}
					m, err := nas.Unmarshal(p.Payload)
					if err != nil {
						return []nas.Packet{p}
					}
					if ar, ok := m.(*nas.AttachRequest); ok {
						ar.UECaps = 0 // bidding down
						body, err := nas.Marshal(ar)
						if err != nil {
							return []nas.Packet{p}
						}
						p.Payload = body
					}
					return []nas.Packet{p}
				}))
				req, err := e.UE.StartAttach()
				if err != nil {
					return err
				}
				e.SendUplink(req)
				if e.UE.SecurityContextActive() {
					return errors.New("UE activated security despite capability mismatch")
				}
				return nil
			},
		},
		{
			Name:      "tc_attach_reject_during_attach",
			Procedure: spec.ProcAttach,
			Run: func(e *Env) error {
				// The attach_request never reaches the MME; a plain
				// attach_reject arrives instead.
				e.Link.SetAdversary(&channel.DropFilter{
					Dir:   channel.Uplink,
					Match: func(nas.Packet) bool { return true },
					Limit: 1,
				})
				req, err := e.UE.StartAttach()
				if err != nil {
					return err
				}
				e.SendUplink(req)
				rej, err := (&nas.Context{}).Seal(&nas.AttachReject{Cause: nas.CauseEPSNotAllowed}, nas.HeaderPlain, nas.DirDownlink)
				if err != nil {
					return err
				}
				e.InjectDownlink(rej)
				return e.ExpectUEState(spec.EMMDeregistered)
			},
		},
		{
			Name:      "tc_security_mode_control",
			Procedure: spec.ProcSecurityMode,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				// Re-authentication followed by a fresh security mode
				// procedure (rekeying).
				p, err := e.MME.StartReauthentication()
				if err != nil {
					return err
				}
				e.SendDownlink(p)
				smc, err := e.MME.StartSecurityModeControl()
				if err != nil {
					return err
				}
				e.SendDownlink(smc)
				if e.MME.PendingProcedure() != "" {
					return fmt.Errorf("security mode control did not complete: pending %s", e.MME.PendingProcedure())
				}
				if e.UE.Keys() != e.MME.Keys() {
					return errors.New("rekeying left UE and MME with different keys")
				}
				return nil
			},
		},
		{
			Name:      "tc_guti_reallocation",
			Procedure: spec.ProcGUTIRealloc,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				before := e.UE.GUTI()
				cmd, err := e.MME.StartGUTIReallocation()
				if err != nil {
					return err
				}
				e.SendDownlink(cmd)
				if e.MME.PendingProcedure() != "" {
					return errors.New("GUTI reallocation did not complete")
				}
				if e.UE.GUTI() == before || e.UE.GUTI() != e.MME.GUTI() {
					return fmt.Errorf("GUTI not updated consistently: ue=%#x mme=%#x", e.UE.GUTI(), e.MME.GUTI())
				}
				return nil
			},
		},
		{
			Name:      "tc_guti_reallocation_retransmission",
			Procedure: spec.ProcGUTIRealloc,
			AddedSRS:  true,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				// First transmission lost; T3450 expiry retransmits.
				e.Link.SetAdversary(&channel.DropFilter{
					Dir:   channel.Downlink,
					Match: func(nas.Packet) bool { return true },
					Limit: 1,
				})
				cmd, err := e.MME.StartGUTIReallocation()
				if err != nil {
					return err
				}
				e.SendDownlink(cmd) // dropped
				if e.MME.PendingProcedure() == "" {
					return errors.New("procedure completed despite dropped command")
				}
				retx, ok := e.MME.TickTimer()
				if !ok {
					return errors.New("timer expiry did not retransmit")
				}
				e.SendDownlink(retx)
				if e.MME.PendingProcedure() != "" {
					return errors.New("GUTI reallocation did not complete after retransmission")
				}
				return nil
			},
		},
		{
			Name:      "tc_guti_reallocation_abort_after_retries",
			Procedure: spec.ProcGUTIRealloc,
			AddedSRS:  true,
			Run: func(e *Env) error {
				// P3's substrate: five straight losses abort the
				// procedure and both sides keep the old GUTI.
				if err := e.Attach(); err != nil {
					return err
				}
				drop := &channel.DropFilter{
					Dir:   channel.Downlink,
					Match: func(nas.Packet) bool { return true },
				}
				e.Link.SetAdversary(drop)
				cmd, err := e.MME.StartGUTIReallocation()
				if err != nil {
					return err
				}
				e.SendDownlink(cmd)
				for {
					retx, ok := e.MME.TickTimer()
					if !ok {
						break
					}
					e.SendDownlink(retx)
				}
				if got := e.MME.AbortedProcedures(); len(got) != 1 || got[0] != spec.GUTIRealloCommand {
					return fmt.Errorf("aborted procedures = %v, want [guti_reallocation_command]", got)
				}
				if drop.DroppedSoFar() != 5 {
					return fmt.Errorf("dropped %d transmissions, want 5 (1 initial + 4 retransmissions)", drop.DroppedSoFar())
				}
				return nil
			},
		},
		{
			Name:      "tc_tracking_area_update",
			Procedure: spec.ProcTAU,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				req, err := e.UE.StartTAU(DefaultTAC + 1)
				if err != nil {
					return err
				}
				e.SendUplink(req)
				if err := e.ExpectUEState(spec.EMMRegistered); err != nil {
					return err
				}
				if e.UE.GUTI() != e.MME.GUTI() {
					return errors.New("GUTI inconsistent after TAU")
				}
				return nil
			},
		},
		{
			Name:      "tc_tau_reject_downgrade",
			Procedure: spec.ProcTAU,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				// Genuine TAU starts, its request is lost, and a plain
				// tau_reject with a severe cause arrives (the classic
				// downgrade/denial surface).
				e.Link.SetAdversary(&channel.DropFilter{
					Dir:   channel.Uplink,
					Match: func(nas.Packet) bool { return true },
					Limit: 1,
				})
				req, err := e.UE.StartTAU(DefaultTAC + 2)
				if err != nil {
					return err
				}
				e.SendUplink(req)
				rej, err := (&nas.Context{}).Seal(&nas.TAUReject{Cause: nas.CauseTANotAllowed}, nas.HeaderPlain, nas.DirDownlink)
				if err != nil {
					return err
				}
				e.InjectDownlink(rej)
				return e.ExpectUEState(spec.EMMDeregistered)
			},
		},
		{
			Name:      "tc_paging_by_guti_service_request",
			Procedure: spec.ProcPaging,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				page, err := e.MME.Page(false)
				if err != nil {
					return err
				}
				e.SendDownlink(page)
				return e.ExpectUERegistered()
			},
		},
		{
			Name:      "tc_paging_by_imsi",
			Procedure: spec.ProcPaging,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				page, err := e.MME.Page(true)
				if err != nil {
					return err
				}
				e.SendDownlink(page)
				// The UE answers an IMSI page too — the IMSI-to-GUTI
				// linkability surface; functionally service resumes.
				return e.ExpectUERegistered()
			},
		},
		{
			Name:      "tc_service_request",
			Procedure: spec.ProcServiceReq,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				req, err := e.UE.StartServiceRequest()
				if err != nil {
					return err
				}
				e.SendUplink(req)
				return e.ExpectUERegistered()
			},
		},
		{
			Name:      "tc_service_reject_injected",
			Procedure: spec.ProcServiceReq,
			Run: func(e *Env) error {
				// The genuine service_request is lost and a plain
				// service_reject with a benign cause arrives; the UE
				// returns to EMM_REGISTERED.
				if err := e.Attach(); err != nil {
					return err
				}
				e.Link.SetAdversary(&channel.DropFilter{
					Dir:   channel.Uplink,
					Match: func(nas.Packet) bool { return true },
					Limit: 1,
				})
				req, err := e.UE.StartServiceRequest()
				if err != nil {
					return err
				}
				e.SendUplink(req)
				rej, err := (&nas.Context{}).Seal(&nas.ServiceReject{Cause: nas.CauseCongestion}, nas.HeaderPlain, nas.DirDownlink)
				if err != nil {
					return err
				}
				e.InjectDownlink(rej)
				return e.ExpectUERegistered()
			},
		},
		{
			Name:      "tc_detach_reattach_required",
			Procedure: spec.ProcDetach,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				req, err := e.MME.StartDetach(nas.DetachReattach)
				if err != nil {
					return err
				}
				e.SendDownlink(req)
				if err := e.ExpectUEState(spec.EMMDeregisteredAttachNeeded); err != nil {
					return err
				}
				return e.Attach()
			},
		},
		{
			Name:      "tc_detach_ue_originated",
			Procedure: spec.ProcDetach,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				req, err := e.UE.StartDetach(false)
				if err != nil {
					return err
				}
				e.SendUplink(req)
				if err := e.ExpectUEState(spec.EMMDeregistered); err != nil {
					return err
				}
				return e.ExpectMMEState(spec.MMEDeregistered)
			},
		},
		{
			Name:      "tc_detach_switch_off",
			Procedure: spec.ProcDetach,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				req, err := e.UE.StartDetach(true)
				if err != nil {
					return err
				}
				e.SendUplink(req)
				// Switch-off detach has no detach_accept.
				return e.ExpectMMEState(spec.MMEDeregistered)
			},
		},
		{
			Name:      "tc_plain_detach_request",
			Procedure: spec.ProcDetach,
			Run: func(e *Env) error {
				// An *unprotected* network detach after security
				// establishment — the stealthy kicking-off surface: the
				// standard's 4.4.4.2 exception list lets the UE process
				// it.
				if err := e.Attach(); err != nil {
					return err
				}
				req, err := (&nas.Context{}).Seal(&nas.DetachRequestNW{Type: nas.DetachEPS}, nas.HeaderPlain, nas.DirDownlink)
				if err != nil {
					return err
				}
				e.InjectDownlink(req)
				return e.ExpectUEState(spec.EMMDeregistered)
			},
		},
		{
			Name:      "tc_detach_network_originated",
			Procedure: spec.ProcDetach,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				req, err := e.MME.StartDetach(nas.DetachEPS)
				if err != nil {
					return err
				}
				e.SendDownlink(req)
				if err := e.ExpectUEState(spec.EMMDeregistered); err != nil {
					return err
				}
				return e.ExpectMMEState(spec.MMEDeregistered)
			},
		},
		{
			Name:      "tc_identity_request_pre_auth",
			Procedure: spec.ProcIdentity,
			Run: func(e *Env) error {
				req, err := e.MME.SendIdentityRequest(nas.IDTypeIMSI)
				if err != nil {
					return err
				}
				e.SendDownlink(req)
				return nil
			},
		},
		{
			Name:      "tc_identity_request_protected",
			Procedure: spec.ProcIdentity,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				req, err := e.MME.SendIdentityRequest(nas.IDTypeIMSI)
				if err != nil {
					return err
				}
				e.SendDownlink(req)
				return nil
			},
		},
		{
			Name:      "tc_identity_request_plain_post_ctx",
			Procedure: spec.ProcIdentity,
			AddedOAI:  true,
			Run: func(e *Env) error {
				// After security establishment, a *plain* identity
				// request arrives (IMSI catcher). Conformant stacks stay
				// silent; OAI's I5 answers with the IMSI. The extracted
				// FSM records which.
				if err := e.Attach(); err != nil {
					return err
				}
				req, err := (&nas.Context{}).Seal(&nas.IdentityRequest{IDType: nas.IDTypeIMSI}, nas.HeaderPlain, nas.DirDownlink)
				if err != nil {
					return err
				}
				e.InjectDownlink(req)
				return nil
			},
		},
		{
			Name:      "tc_emm_information",
			Procedure: spec.ProcAttach,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				p, err := e.MME.SendEMMInformation()
				if err != nil {
					return err
				}
				e.SendDownlink(p)
				return nil
			},
		},
		{
			Name:      "tc_replay_protected_downlink",
			Procedure: spec.ProcSecurityMode,
			AddedSRS:  true,
			AddedOAI:  true,
			Run: func(e *Env) error {
				// Attach, then replay every protected downlink packet.
				// Conformant: all discarded. srsUE (I1): accepted with a
				// counter reset. OAI (I1): last one accepted.
				if err := e.Attach(); err != nil {
					return err
				}
				replayCaptured(e, func(p nas.Packet) bool {
					return p.Header != nas.HeaderPlain
				})
				return nil
			},
		},
		{
			Name:      "tc_replay_smc",
			Procedure: spec.ProcSecurityMode,
			AddedSRS:  true,
			AddedOAI:  true,
			Run: func(e *Env) error {
				// Replay only the captured security_mode_command (I6).
				if err := e.Attach(); err != nil {
					return err
				}
				n := replayCaptured(e, func(p nas.Packet) bool {
					return p.Header == nas.HeaderIntegrity
				})
				if n == 0 {
					return errors.New("no security_mode_command captured during attach")
				}
				return nil
			},
		},
		{
			Name:      "tc_plain_message_post_ctx",
			Procedure: spec.ProcGUTIRealloc,
			AddedOAI:  true,
			Run: func(e *Env) error {
				// A plain guti_reallocation_command after security
				// establishment (I2 surface).
				if err := e.Attach(); err != nil {
					return err
				}
				cmd, err := (&nas.Context{}).Seal(&nas.GUTIReallocationCommand{GUTI: 0x6666}, nas.HeaderPlain, nas.DirDownlink)
				if err != nil {
					return err
				}
				e.InjectDownlink(cmd)
				return nil
			},
		},
		{
			Name:      "tc_reattach_after_reject_replay",
			Procedure: spec.ProcAttach,
			AddedSRS:  true,
			Run: func(e *Env) error {
				// I4 surface: after a plain attach_reject the adversary
				// replays the captured attach_accept. A conformant UE
				// deleted its context and stays deregistered; srsUE
				// re-registers without authentication.
				if err := e.Attach(); err != nil {
					return err
				}
				rej, err := (&nas.Context{}).Seal(&nas.AttachReject{Cause: nas.CauseIllegalUE}, nas.HeaderPlain, nas.DirDownlink)
				if err != nil {
					return err
				}
				e.InjectDownlink(rej)
				if err := e.ExpectUEState(spec.EMMDeregistered); err != nil {
					return err
				}
				replayCaptured(e, func(p nas.Packet) bool {
					return p.Header == nas.HeaderIntegrityCiphered
				})
				return nil
			},
		},
		{
			Name:      "tc_stale_auth_request_replay",
			Procedure: spec.ProcAuthentication,
			AddedSRS:  true,
			AddedOAI:  true,
			Run: func(e *Env) error {
				// P1's conformance-level drive: the first challenge is
				// captured-and-dropped, attach completes with a retry
				// vector, then the stale challenge is replayed.
				drop := &channel.DropFilter{
					Dir:   channel.Downlink,
					Match: func(p nas.Packet) bool { return p.Header == nas.HeaderPlain },
					Limit: 1,
				}
				e.Link.SetAdversary(drop)
				req, err := e.UE.StartAttach()
				if err != nil {
					return err
				}
				e.SendUplink(req) // auth_request captured and dropped
				if drop.DroppedSoFar() != 1 {
					return errors.New("first challenge was not dropped")
				}
				e.Link.SetAdversary(nil)
				retry, err := e.MME.StartReauthentication()
				if err != nil {
					return err
				}
				e.SendDownlink(retry)
				if err := e.ExpectUEState(spec.EMMRegistered); err != nil {
					return err
				}
				// Replay the stale captured challenge.
				stale := e.Link.Captured(channel.Downlink)[0]
				e.InjectDownlink(stale)
				return nil
			},
		},
		{
			Name:      "tc_count_jump_accepted",
			Procedure: spec.ProcGUTIRealloc,
			Run: func(e *Env) error {
				// Several downlink messages are lost; a later one with a
				// jumped COUNT must still be accepted (higher-is-enough
				// rule, P3's substrate).
				if err := e.Attach(); err != nil {
					return err
				}
				e.Link.SetAdversary(&channel.DropFilter{
					Dir:   channel.Downlink,
					Match: func(nas.Packet) bool { return true },
					Limit: 3,
				})
				for i := 0; i < 3; i++ {
					p, err := e.MME.SendEMMInformation()
					if err != nil {
						return err
					}
					e.SendDownlink(p) // dropped
				}
				before := e.UE.GUTI()
				cmd, err := e.MME.StartGUTIReallocation()
				if err != nil {
					return err
				}
				e.SendDownlink(cmd)
				if e.UE.GUTI() == before {
					return errors.New("jumped-count command not accepted")
				}
				return nil
			},
		},
		{
			Name:      "tc_pdn_connectivity",
			Procedure: spec.ProcPDNConnectivity,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				req, err := e.UE.StartPDNConnectivity("internet.example")
				if err != nil {
					return err
				}
				e.SendUplink(req)
				if got := e.UE.ESMState(); got != spec.BearerActive {
					return fmt.Errorf("ESM state = %s, want BEARER_CONTEXT_ACTIVE", got)
				}
				if !e.MME.BearerActive() {
					return errors.New("network side did not record the bearer")
				}
				return nil
			},
		},
		{
			Name:      "tc_pdn_connectivity_rejected",
			Procedure: spec.ProcPDNConnectivity,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				req, err := e.UE.StartPDNConnectivity("blocked.example")
				if err != nil {
					return err
				}
				e.SendUplink(req)
				if got := e.UE.ESMState(); got != spec.BearerInactive {
					return fmt.Errorf("ESM state = %s, want BEARER_CONTEXT_INACTIVE after reject", got)
				}
				return nil
			},
		},
		{
			Name:      "tc_bearer_deactivation",
			Procedure: spec.ProcBearerMgmt,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				req, err := e.UE.StartPDNConnectivity("internet.example")
				if err != nil {
					return err
				}
				e.SendUplink(req)
				deact, err := e.MME.StartBearerDeactivation()
				if err != nil {
					return err
				}
				e.SendDownlink(deact)
				if got := e.UE.ESMState(); got != spec.BearerInactive {
					return fmt.Errorf("ESM state = %s, want BEARER_CONTEXT_INACTIVE", got)
				}
				if e.MME.BearerActive() {
					return errors.New("network side still records the bearer")
				}
				return nil
			},
		},
		{
			Name:      "tc_replay_esm_activation",
			Procedure: spec.ProcBearerMgmt,
			Run: func(e *Env) error {
				// Replay the captured bearer activation: conformant
				// discards it (stale COUNT), the I1 quirks accept it —
				// the extracted ESM machine records which.
				if err := e.Attach(); err != nil {
					return err
				}
				req, err := e.UE.StartPDNConnectivity("internet.example")
				if err != nil {
					return err
				}
				e.SendUplink(req)
				// Replay newest-first: srsUE's counter reset (I1) would
				// otherwise make the later replays look fresh.
				captured := e.Link.Captured(channel.Downlink)
				for i := len(captured) - 1; i >= 0; i-- {
					if captured[i].Header == nas.HeaderIntegrityCiphered {
						e.InjectDownlink(captured[i])
					}
				}
				return nil
			},
		},
		{
			Name:      "tc_plain_esm_activation",
			Procedure: spec.ProcBearerMgmt,
			Run: func(e *Env) error {
				// An unprotected bearer activation after security
				// establishment: the ESM face of I2.
				if err := e.Attach(); err != nil {
					return err
				}
				pkt, err := (&nas.Context{}).Seal(&nas.ActivateDefaultBearerRequest{PTI: 1, BearerID: 9, APN: "evil"}, nas.HeaderPlain, nas.DirDownlink)
				if err != nil {
					return err
				}
				e.InjectDownlink(pkt)
				return nil
			},
		},
		{
			Name:      "tc_esm_information",
			Procedure: spec.ProcPDNConnectivity,
			Run: func(e *Env) error {
				if err := e.Attach(); err != nil {
					return err
				}
				req, err := e.MME.SendESMInformationRequest(1)
				if err != nil {
					return err
				}
				e.SendDownlink(req)
				return nil
			},
		},
		{
			Name:      "tc_attach_unknown_imsi_rejected",
			Procedure: spec.ProcAttach,
			Run: func(e *Env) error {
				// A foreign UE's attach_request is rejected by the MME.
				req, err := (&nas.Context{}).Seal(&nas.AttachRequest{IMSI: "999990000000001"}, nas.HeaderPlain, nas.DirUplink)
				if err != nil {
					return err
				}
				e.InjectUplink(req)
				return e.ExpectMMEState(spec.MMEDeregistered)
			},
		},
	}
}

// Added reports whether the case is one of the paper's contributed
// additions for the given profile.
func (tc TestCase) Added(profile ue.Profile) bool {
	switch profile {
	case ue.ProfileSRS:
		return tc.AddedSRS
	case ue.ProfileOAI:
		return tc.AddedOAI
	default:
		return false
	}
}

// SuiteFor selects the cases available for a profile's test
// infrastructure: the closed-source stack ships the complete conformance
// suite; the open-source stacks' base suites lack the cases the paper's
// authors contributed (9 for srsLTE, 7 for OAI).
func SuiteFor(profile ue.Profile, includeAdded bool) []TestCase {
	all := Cases()
	if includeAdded || profile == ue.ProfileConformant {
		return all
	}
	var base []TestCase
	for _, tc := range all {
		if !tc.Added(profile) {
			base = append(base, tc)
		}
	}
	return base
}
