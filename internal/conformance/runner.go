package conformance

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strconv"

	"prochecker/internal/channel"
	"prochecker/internal/obs"
	"prochecker/internal/resilience"
	"prochecker/internal/trace"
	"prochecker/internal/ue"
)

// CaseResult is one test case's functional outcome.
type CaseResult struct {
	Name string
	Err  error
	// Faults counts the channel faults the adversary injected during
	// this case (zero on a benign link).
	Faults int
}

// Report is the product of one suite run: per-case outcomes, the combined
// information-rich log, and the NAS-layer coverage it achieved.
type Report struct {
	Profile  ue.Profile
	Results  []CaseResult
	Log      trace.Log
	Coverage Coverage
}

// Passed counts the cases that completed without functional error.
func (r *Report) Passed() int {
	n := 0
	for _, res := range r.Results {
		if res.Err == nil {
			n++
		}
	}
	return n
}

// FirstFailure returns the first failing case, if any.
func (r *Report) FirstFailure() (CaseResult, bool) {
	for _, res := range r.Results {
		if res.Err != nil {
			return res, true
		}
	}
	return CaseResult{}, false
}

// FaultCount totals the channel faults injected across the suite.
func (r *Report) FaultCount() int {
	n := 0
	for _, res := range r.Results {
		n += res.Faults
	}
	return n
}

// RunOptions tunes a suite run.
type RunOptions struct {
	// Adversary builds the link adversary for each case (a fresh
	// environment, and hence a fresh adversary, per case — stateful
	// seeded adversaries restart deterministically). nil, or a nil
	// return, means a benign link.
	Adversary func(caseIndex int) channel.Adversary
}

func (o RunOptions) adversaryFor(i int) channel.Adversary {
	if o.Adversary == nil {
		return channel.PassThrough{}
	}
	if adv := o.Adversary(i); adv != nil {
		return adv
	}
	return channel.PassThrough{}
}

// Run executes the given cases against a fresh environment per case (as
// conformance suites do — each test case assumes a pristine UE) and
// produces the combined log for model extraction. Faults are expected
// inputs, not fatal errors: an environment that fails to build and a
// case that panics are both recorded in that case's CaseResult, and the
// remaining cases still run.
func Run(profile ue.Profile, cases []TestCase) (*Report, error) {
	return RunContext(context.Background(), profile, cases, RunOptions{})
}

// RunContext is Run with cancellation and per-case adversary control.
// When ctx is cancelled mid-suite it returns the report for the cases
// already executed together with an error wrapping
// resilience.ErrCancelled.
func RunContext(ctx context.Context, profile ue.Profile, cases []TestCase, opts RunOptions) (*Report, error) {
	_, span := obs.Start(ctx, "conformance.suite",
		obs.A("profile", profile.String()), obs.A("cases", strconv.Itoa(len(cases))))
	reg := obs.FromContext(ctx).Metrics()

	rep := &Report{Profile: profile}
	var combined trace.Log
	var cancelled error
	for i, tc := range cases {
		if err := ctx.Err(); err != nil {
			cancelled = fmt.Errorf("conformance: suite stopped after %d of %d cases: %w",
				len(rep.Results), len(cases), resilience.ErrCancelled)
			break
		}
		adv := opts.adversaryFor(i)
		env, err := NewEnv(profile, adv)
		if err != nil {
			// Environment-setup failure is this case's failure, not the
			// suite's: record it and keep running the rest.
			rep.Results = append(rep.Results, CaseResult{
				Name: tc.Name,
				Err:  fmt.Errorf("conformance: preparing %s: %w", tc.Name, err),
			})
			continue
		}
		env.Rec.TestCase(tc.Name)
		runErr := runCase(env, tc)
		if runErr != nil && errors.Is(runErr, resilience.ErrCasePanic) {
			reg.Counter("resilience.panics_recovered").Inc()
		}
		rep.Results = append(rep.Results, CaseResult{
			Name:   tc.Name,
			Err:    runErr,
			Faults: channel.Faults(adv),
		})
		if reg != nil {
			for kind, n := range channel.FaultsByKind(adv) {
				reg.Counter("conformance.faults." + kind).Add(int64(n))
			}
		}
		combined = append(combined, env.Rec.Snapshot()...)
	}
	rep.Log = combined
	rep.Coverage = ComputeCoverage(combined, ue.StyleFor(profile))

	if reg != nil {
		reg.Counter("conformance.cases").Add(int64(len(rep.Results)))
		reg.Counter("conformance.case_failures").Add(int64(len(rep.Results) - rep.Passed()))
		reg.Counter("conformance.faults_injected").Add(int64(rep.FaultCount()))
	}
	span.SetAttr("passed", strconv.Itoa(rep.Passed()))
	span.SetAttr("faults", strconv.Itoa(rep.FaultCount()))
	span.EndErr(cancelled)
	return rep, cancelled
}

// runCase executes one case with panic isolation: a panicking TestCase
// is converted into that case's error (wrapping resilience.ErrCasePanic)
// instead of killing the process.
func runCase(env *Env, tc TestCase) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("conformance: %s: %w: %v\n%s",
				tc.Name, resilience.ErrCasePanic, r, debug.Stack())
		}
	}()
	return tc.Run(env)
}

// RunSuite runs the profile-appropriate suite: the full catalogue for the
// closed-source profile, base-or-extended for the open-source ones.
func RunSuite(profile ue.Profile, includeAdded bool) (*Report, error) {
	return Run(profile, SuiteFor(profile, includeAdded))
}

// RunSuiteContext is RunSuite with cancellation and adversary control.
func RunSuiteContext(ctx context.Context, profile ue.Profile, includeAdded bool, opts RunOptions) (*Report, error) {
	return RunContext(ctx, profile, SuiteFor(profile, includeAdded), opts)
}
