package conformance

import (
	"fmt"

	"prochecker/internal/channel"
	"prochecker/internal/trace"
	"prochecker/internal/ue"
)

// CaseResult is one test case's functional outcome.
type CaseResult struct {
	Name string
	Err  error
}

// Report is the product of one suite run: per-case outcomes, the combined
// information-rich log, and the NAS-layer coverage it achieved.
type Report struct {
	Profile  ue.Profile
	Results  []CaseResult
	Log      trace.Log
	Coverage Coverage
}

// Passed counts the cases that completed without functional error.
func (r *Report) Passed() int {
	n := 0
	for _, res := range r.Results {
		if res.Err == nil {
			n++
		}
	}
	return n
}

// FirstFailure returns the first failing case, if any.
func (r *Report) FirstFailure() (CaseResult, bool) {
	for _, res := range r.Results {
		if res.Err != nil {
			return res, true
		}
	}
	return CaseResult{}, false
}

// Run executes the given cases against a fresh environment per case (as
// conformance suites do — each test case assumes a pristine UE) and
// produces the combined log for model extraction.
func Run(profile ue.Profile, cases []TestCase) (*Report, error) {
	rep := &Report{Profile: profile}
	var combined trace.Log
	for _, tc := range cases {
		env, err := NewEnv(profile, channel.PassThrough{})
		if err != nil {
			return nil, fmt.Errorf("conformance: preparing %s: %w", tc.Name, err)
		}
		env.Rec.TestCase(tc.Name)
		runErr := tc.Run(env)
		rep.Results = append(rep.Results, CaseResult{Name: tc.Name, Err: runErr})
		combined = append(combined, env.Rec.Snapshot()...)
	}
	rep.Log = combined
	rep.Coverage = ComputeCoverage(combined, ue.StyleFor(profile))
	return rep, nil
}

// RunSuite runs the profile-appropriate suite: the full catalogue for the
// closed-source profile, base-or-extended for the open-source ones.
func RunSuite(profile ue.Profile, includeAdded bool) (*Report, error) {
	return Run(profile, SuiteFor(profile, includeAdded))
}
