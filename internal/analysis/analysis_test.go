package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile lays a fixture file down under dir, creating parents.
func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func checks(t *testing.T, dir string) []Finding {
	t.Helper()
	findings, err := CheckDir(dir)
	if err != nil {
		t.Fatalf("CheckDir: %v", err)
	}
	return findings
}

func TestSpanLeakDetected(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "leak.go", `package p

func leaky(ctx ctxT) {
	ctx, span := obs.Start(ctx, "phase")
	_ = span
	use(ctx)
}
`)
	findings := checks(t, dir)
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %v", findings)
	}
	f := findings[0]
	if f.Check != "span-leak" || f.Line != 4 || !strings.Contains(f.Message, `"span"`) {
		t.Errorf("unexpected finding: %+v", f)
	}
}

func TestSpanBlankIdentifierDetected(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "blank.go", `package p

func discard(ctx ctxT) {
	ctx, _ = obs.Start(ctx, "phase")
	use(ctx)
}
`)
	findings := checks(t, dir)
	if len(findings) != 1 || findings[0].Check != "span-leak" {
		t.Fatalf("want 1 blank-identifier finding, got %v", findings)
	}
	if !strings.Contains(findings[0].Message, "blank identifier") {
		t.Errorf("message does not mention the blank identifier: %q", findings[0].Message)
	}
}

func TestSpanEndedVariantsAreClean(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "ok.go", `package p

func plain(ctx ctxT) {
	ctx, span := obs.Start(ctx, "phase")
	work(ctx)
	span.End()
}

func deferred(ctx ctxT) (err error) {
	ctx, span := obs.Start(ctx, "phase")
	defer func() { span.EndErr(err) }()
	return work(ctx)
}

func earlyErr(ctx ctxT) error {
	ctx, span := obs.Start(ctx, "phase")
	if err := work(ctx); err != nil {
		span.EndErr(err)
		return err
	}
	span.End()
	return nil
}

func notAStart(ctx ctxT) {
	a, b := other.Start(ctx, "phase")
	use(a, b)
}
`)
	if findings := checks(t, dir); len(findings) != 0 {
		t.Errorf("clean fixtures reported: %v", findings)
	}
}

func TestFileLeakDetected(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "leak.go", `package p

func leaky(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	f.Read(nil)
	return nil
}
`)
	findings := checks(t, dir)
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %v", findings)
	}
	f := findings[0]
	if f.Check != "file-leak" || f.Line != 4 || !strings.Contains(f.Message, `"f"`) {
		t.Errorf("unexpected finding: %+v", f)
	}
}

func TestFileBlankIdentifierDetected(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "blank.go", `package p

func discard(dir string) {
	_, err := os.CreateTemp(dir, "x-*")
	use(err)
}
`)
	findings := checks(t, dir)
	if len(findings) != 1 || findings[0].Check != "file-leak" {
		t.Fatalf("want 1 blank-identifier finding, got %v", findings)
	}
	if !strings.Contains(findings[0].Message, "blank identifier") {
		t.Errorf("message does not mention the blank identifier: %q", findings[0].Message)
	}
}

func TestFileClosedOrEscapedVariantsAreClean(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "ok.go", `package p

func closed(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return read(f2)
}

func deferredClosure(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() { f.Close() }()
	return nil
}

func returned(path string) (fileT, error) {
	f, err := os.OpenFile(path, 0, 0)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func handedToCall(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return consume(f)
}

func storedInField(path string) error {
	f, err := os.CreateTemp("", "x-*")
	if err != nil {
		return err
	}
	h.file = f
	return nil
}

func storedInLiteral(path string) holderT {
	f, err := os.Open(path)
	must(err)
	return holderT{file: f}
}

func addressTaken(path string) {
	f, err := os.Open(path)
	must(err)
	register(&f)
}

func notOS(path string) {
	f, err := fsx.Open(path)
	use(f, err)
}
`)
	if findings := checks(t, dir); len(findings) != 0 {
		t.Errorf("clean fixtures reported: %v", findings)
	}
}

func TestSentinelUnhandledDetected(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "resilience/resilience.go", `package resilience

import "errors"

var (
	ErrHandled  = errors.New("handled")
	ErrOrphaned = errors.New("orphaned")
	errPrivate  = errors.New("not exported, exempt")
)

func classifyOne(err error) int {
	if errors.Is(err, ErrHandled) {
		return 1
	}
	return 0
}
`)
	findings := checks(t, dir)
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %v", findings)
	}
	f := findings[0]
	if f.Check != "classify-sentinel" || !strings.Contains(f.Message, "ErrOrphaned") {
		t.Errorf("unexpected finding: %+v", f)
	}
}

func TestSentinelCheckScopedToResilienceDir(t *testing.T) {
	dir := t.TempDir()
	// Same shape, but not in a directory named resilience: exempt.
	writeFile(t, dir, "extract/errors.go", `package extract

import "errors"

var ErrEmptyLog = errors.New("empty log")
`)
	if findings := checks(t, dir); len(findings) != 0 {
		t.Errorf("non-resilience sentinels reported: %v", findings)
	}
}

func TestTestFilesAndTestdataSkipped(t *testing.T) {
	dir := t.TempDir()
	leaky := `package p

func leaky(ctx ctxT) {
	ctx, span := obs.Start(ctx, "phase")
	_ = span
	use(ctx)
}
`
	writeFile(t, dir, "leak_test.go", leaky)
	writeFile(t, dir, "testdata/leak.go", leaky)
	if findings := checks(t, dir); len(findings) != 0 {
		t.Errorf("test/testdata files reported: %v", findings)
	}
}

// kindFixture declares a three-member Kind family the way the real
// resilience package does: an iota block typed on its first spec.
const kindFixture = `package resilience

type Kind uint8

const (
	KindNone Kind = iota
	KindCancelled
	KindInternal
)
`

func TestExhaustiveSwitchMissingMemberDetected(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "resilience/kinds.go", kindFixture)
	writeFile(t, dir, "resilience/exit.go", `package resilience

func exitCode(k Kind) int {
	switch k {
	case KindNone:
		return 0
	case KindCancelled:
		return 2
	default:
		return 1
	}
}
`)
	findings := checks(t, dir)
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %v", findings)
	}
	f := findings[0]
	if f.Check != "exhaustive-switch" || !strings.Contains(f.Message, "KindInternal") {
		t.Errorf("unexpected finding: %+v", f)
	}
	if !strings.Contains(f.Message, "default clause does not excuse") {
		t.Errorf("message does not state the default rule: %q", f.Message)
	}
}

func TestExhaustiveSwitchCompleteIsClean(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "resilience/kinds.go", kindFixture)
	writeFile(t, dir, "resilience/exit.go", `package resilience

func exitCode(k Kind) int {
	switch k {
	case KindNone:
		return 0
	case KindCancelled:
		return 2
	case KindInternal:
		return 1
	default:
		return 1
	}
}
`)
	if findings := checks(t, dir); len(findings) != 0 {
		t.Errorf("complete switch reported: %v", findings)
	}
}

func TestExhaustiveSwitchSingleMemberAndTaglessExempt(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "resilience/kinds.go", kindFixture)
	// One named member: the switch has not adopted the family. A
	// tagless switch is out of scope even when its conditions mention
	// members. Unrelated labels never count toward adoption.
	writeFile(t, dir, "resilience/uses.go", `package resilience

func oneMember(k Kind) bool {
	switch k {
	case KindCancelled:
		return true
	default:
		return false
	}
}

func tagless(k Kind) int {
	switch {
	case k == KindNone:
		return 0
	case k == KindCancelled:
		return 2
	}
	return 1
}

func unrelated(s string) int {
	switch s {
	case "a", "b":
		return 1
	}
	return 0
}
`)
	if findings := checks(t, dir); len(findings) != 0 {
		t.Errorf("exempt switches reported: %v", findings)
	}
}

func TestExhaustiveSwitchQualifiedCrossPackage(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "resilience/kinds.go", kindFixture)
	// A consumer package switching via the qualified names adopts the
	// family the same way the declaring package does.
	writeFile(t, dir, "server/exit.go", `package server

import "prochecker/internal/resilience"

func status(k resilience.Kind) int {
	switch k {
	case resilience.KindNone:
		return 200
	case resilience.KindCancelled:
		return 499
	}
	return 500
}
`)
	findings := checks(t, dir)
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %v", findings)
	}
	if findings[0].File != "server/exit.go" || !strings.Contains(findings[0].Message, "KindInternal") {
		t.Errorf("unexpected finding: %+v", findings[0])
	}
}

func TestExhaustiveSwitchWALRecordFamily(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "jobs/wal.go", `package jobs

type RecordType string

const (
	RecSubmitted RecordType = "submitted"
	RecStarted   RecordType = "started"
	RecTerminal  RecordType = "terminal"
)

func replay(rt RecordType) int {
	switch rt {
	case RecSubmitted:
		return 1
	case RecStarted:
		return 2
	}
	return 0
}
`)
	findings := checks(t, dir)
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %v", findings)
	}
	if findings[0].Check != "exhaustive-switch" || !strings.Contains(findings[0].Message, "RecTerminal") {
		t.Errorf("unexpected finding: %+v", findings[0])
	}
	if !strings.Contains(findings[0].Message, "WAL record") {
		t.Errorf("message does not name the family: %q", findings[0].Message)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{File: "a/b.go", Line: 7, Check: "span-leak", Message: "boom"}
	if got := f.String(); got != "a/b.go:7: [span-leak] boom" {
		t.Errorf("String() = %q", got)
	}
}

// TestRepositoryIsClean self-applies the checker: the repository that
// ships the rule must satisfy it. This is also what gives the
// classify-sentinel rule its teeth — adding a resilience sentinel
// without classifier handling fails this test before ci.sh even runs.
func TestRepositoryIsClean(t *testing.T) {
	findings, err := CheckDir("../..")
	if err != nil {
		t.Fatalf("CheckDir(repo root): %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
