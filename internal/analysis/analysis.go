// Package analysis is the repository's custom Go-source lint layer: a
// small stdlib-only (go/ast + go/parser) checker for project-specific
// invariants that gofmt and go vet cannot see. It is the source-level
// counterpart of internal/lint, which checks extracted models.
//
// Three checks are implemented:
//
//   - span-leak: every span obtained from obs.Start must be ended.
//     A span variable that is never passed to End or EndErr anywhere in
//     its enclosing function (including defers), or that is discarded
//     with the blank identifier, leaks an open span — the observability
//     report would silently under-count that phase.
//
//   - file-leak: every *os.File obtained from os.Open, os.OpenFile,
//     os.Create or os.CreateTemp must either be closed in its enclosing
//     function or escape it (passed to a call, returned, stored in a
//     variable, struct or slice, or have its address taken — ownership
//     transferred elsewhere). A handle that does neither, or that is
//     discarded with the blank identifier, leaks a file descriptor on
//     every error path that reaches it.
//
//   - classify-sentinel: every exported Err* sentinel declared in
//     internal/resilience must be handled by its classifyOne switch.
//     A sentinel that the classifier does not recognise silently decays
//     to KindInternal, which breaks the CLI exit-code contract.
//
//   - exhaustive-switch: a switch whose case labels name two or more
//     members of a closed enum family — the resilience failure kinds
//     (Kind*) or the jobs WAL record vocabulary (Rec*) — has adopted
//     that family and must name every member. A default clause does not
//     excuse a missing member: defaults are for forward compatibility,
//     and a family member silently falling through to one is exactly
//     the bug the rule exists to catch (a new Kind inheriting the wrong
//     exit code, a new record type dropped by WAL replay). Switches
//     without a tag, or that name fewer than two members, are out of
//     scope.
//
// The checker is wired into ci.sh via cmd/srccheck and runs over the
// whole repository on every build.
package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one source-level diagnostic.
type Finding struct {
	// File is the path of the offending file, relative to the checked
	// root when possible.
	File string
	// Line is the 1-based source line.
	Line int
	// Check names the rule that fired ("span-leak", "file-leak",
	// "classify-sentinel" or "exhaustive-switch").
	Check string
	// Message describes the violation.
	Message string
}

// String renders the conventional compiler-style form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Check, f.Message)
}

// CheckDir walks every non-test Go file under root (skipping testdata
// and hidden directories) and returns the findings of all checks,
// sorted by file and line.
func CheckDir(root string) ([]Finding, error) {
	fset := token.NewFileSet()
	var findings []Finding
	resilienceFiles := make(map[string]*ast.File)
	allFiles := make(map[string]*ast.File)

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("analysis: parsing %s: %w", path, err)
		}
		rel := path
		if r, rerr := filepath.Rel(root, path); rerr == nil {
			rel = r
		}
		findings = append(findings, checkSpanLeaks(fset, rel, file)...)
		findings = append(findings, checkFileLeaks(fset, rel, file)...)
		if filepath.Base(filepath.Dir(path)) == "resilience" {
			resilienceFiles[rel] = file
		}
		allFiles[rel] = file
		return nil
	})
	if err != nil {
		return nil, err
	}

	findings = append(findings, checkClassifySentinels(fset, resilienceFiles)...)
	findings = append(findings, checkExhaustiveSwitches(fset, allFiles)...)
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		return findings[i].Line < findings[j].Line
	})
	return findings, nil
}

// checkSpanLeaks flags obs.Start results whose span is discarded or
// never ended within the enclosing function.
func checkSpanLeaks(fset *token.FileSet, file string, f *ast.File) []Finding {
	var findings []Finding
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		findings = append(findings, spanLeaksInFunc(fset, file, fn)...)
	}
	return findings
}

func spanLeaksInFunc(fset *token.FileSet, file string, fn *ast.FuncDecl) []Finding {
	// First pass: collect span variables assigned from obs.Start.
	type spanVar struct {
		name string
		pos  token.Pos
	}
	var spans []spanVar
	var findings []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !isObsStart(call) {
			return true
		}
		ident, ok := assign.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if ident.Name == "_" {
			findings = append(findings, Finding{
				File:    file,
				Line:    fset.Position(assign.Pos()).Line,
				Check:   "span-leak",
				Message: fmt.Sprintf("%s discards the span from obs.Start with the blank identifier; spans must be ended", fn.Name.Name),
			})
			return true
		}
		spans = append(spans, spanVar{name: ident.Name, pos: assign.Pos()})
		return true
	})

	// Second pass: a span variable must appear as the receiver of at
	// least one End or EndErr call somewhere in the function.
	for _, sv := range spans {
		ended := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if ended {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv, ok := sel.X.(*ast.Ident)
			if !ok || recv.Name != sv.name {
				return true
			}
			if sel.Sel.Name == "End" || sel.Sel.Name == "EndErr" {
				ended = true
				return false
			}
			return true
		})
		if !ended {
			findings = append(findings, Finding{
				File:    file,
				Line:    fset.Position(sv.pos).Line,
				Check:   "span-leak",
				Message: fmt.Sprintf("span %q from obs.Start is never ended in %s (no End or EndErr call)", sv.name, fn.Name.Name),
			})
		}
	}
	return findings
}

// checkFileLeaks flags os file handles that are blank-discarded, or
// that are neither closed nor handed off within the enclosing function.
// The analysis generalises the span-leak pass: it is purely syntactic
// and deliberately conservative — any escape of the handle value
// (call argument, return, reassignment, composite literal, address-of)
// transfers ownership and silences the rule, so only handles that
// provably stay local and unclosed are reported.
func checkFileLeaks(fset *token.FileSet, file string, f *ast.File) []Finding {
	var findings []Finding
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		findings = append(findings, fileLeaksInFunc(fset, file, fn)...)
	}
	return findings
}

func fileLeaksInFunc(fset *token.FileSet, file string, fn *ast.FuncDecl) []Finding {
	// First pass: collect handle variables assigned from the os package
	// open-style constructors in the idiomatic f, err := form.
	type fileVar struct {
		name string
		fn   string // constructor name, for the message
		pos  token.Pos
	}
	var handles []fileVar
	var findings []Finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		ctor, ok := osOpenName(call)
		if !ok {
			return true
		}
		ident, ok := assign.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if ident.Name == "_" {
			findings = append(findings, Finding{
				File:    file,
				Line:    fset.Position(assign.Pos()).Line,
				Check:   "file-leak",
				Message: fmt.Sprintf("%s discards the handle from os.%s with the blank identifier; open files must be closed", fn.Name.Name, ctor),
			})
			return true
		}
		handles = append(handles, fileVar{name: ident.Name, fn: ctor, pos: assign.Pos()})
		return true
	})

	// Second pass: a handle must be closed or escape the function —
	// whichever use appears anywhere in the body, including defers and
	// closures.
	for _, hv := range handles {
		settled := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if settled {
				return false
			}
			switch node := n.(type) {
			case *ast.CallExpr:
				if sel, ok := node.Fun.(*ast.SelectorExpr); ok {
					if recv, ok := sel.X.(*ast.Ident); ok && recv.Name == hv.name && sel.Sel.Name == "Close" {
						settled = true
						return false
					}
				}
				for _, arg := range node.Args {
					if isIdent(arg, hv.name) {
						settled = true
						return false
					}
				}
			case *ast.ReturnStmt:
				for _, res := range node.Results {
					if isIdent(res, hv.name) {
						settled = true
						return false
					}
				}
			case *ast.AssignStmt:
				for _, rhs := range node.Rhs {
					if isIdent(rhs, hv.name) {
						settled = true
						return false
					}
				}
			case *ast.CompositeLit:
				for _, elt := range node.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isIdent(v, hv.name) {
						settled = true
						return false
					}
				}
			case *ast.UnaryExpr:
				if node.Op == token.AND && isIdent(node.X, hv.name) {
					settled = true
					return false
				}
			}
			return true
		})
		if !settled {
			findings = append(findings, Finding{
				File:    file,
				Line:    fset.Position(hv.pos).Line,
				Check:   "file-leak",
				Message: fmt.Sprintf("handle %q from os.%s is never closed in %s and never escapes it (no Close call, no handoff)", hv.name, hv.fn, fn.Name.Name),
			})
		}
	}
	return findings
}

// isIdent reports whether expr is the bare identifier name.
func isIdent(expr ast.Expr, name string) bool {
	ident, ok := expr.(*ast.Ident)
	return ok && ident.Name == name
}

// osOpenName matches a call of one of the os package's open-style
// constructors and returns which one. Like isObsStart, the match is
// syntactic: a selector on an identifier named os.
func osOpenName(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "os" {
		return "", false
	}
	switch sel.Sel.Name {
	case "Open", "OpenFile", "Create", "CreateTemp":
		return sel.Sel.Name, true
	}
	return "", false
}

// isObsStart matches a call of the form obs.Start(...). The match is
// purely syntactic: any selector Start on an identifier obs. That is
// the only spelling the repository uses.
func isObsStart(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Start" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "obs"
}

// checkClassifySentinels verifies that every exported Err* sentinel
// declared at the top level of the resilience package is referenced
// inside its classifyOne function. The check is scoped to that package:
// sentinels elsewhere (extract.ErrEmptyLog, jobs.ErrQueueFull, ...) are
// programming-interface errors, not taxonomy kinds.
func checkClassifySentinels(fset *token.FileSet, files map[string]*ast.File) []Finding {
	if len(files) == 0 {
		return nil
	}
	type sentinel struct {
		file string
		pos  token.Pos
	}
	sentinels := make(map[string]sentinel)
	var classifyBody *ast.BlockStmt

	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		f := files[path]
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				for _, s := range d.Specs {
					vs, ok := s.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if strings.HasPrefix(name.Name, "Err") && ast.IsExported(name.Name) {
							sentinels[name.Name] = sentinel{file: path, pos: name.Pos()}
						}
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name == "classifyOne" && d.Body != nil {
					classifyBody = d.Body
				}
			}
		}
	}
	if classifyBody == nil {
		// No classifier at all: report every sentinel as unhandled.
		var findings []Finding
		for name, sv := range sentinels {
			findings = append(findings, Finding{
				File:    sv.file,
				Line:    fset.Position(sv.pos).Line,
				Check:   "classify-sentinel",
				Message: fmt.Sprintf("sentinel %s has no classifyOne function to handle it", name),
			})
		}
		return findings
	}

	handled := make(map[string]bool)
	ast.Inspect(classifyBody, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok {
			handled[ident.Name] = true
		}
		return true
	})

	var findings []Finding
	for name, sv := range sentinels {
		if !handled[name] {
			findings = append(findings, Finding{
				File:    sv.file,
				Line:    fset.Position(sv.pos).Line,
				Check:   "classify-sentinel",
				Message: fmt.Sprintf("exported sentinel %s is never handled by classifyOne; Classify would decay it to KindInternal", name),
			})
		}
	}
	return findings
}

// enumFamily describes one closed constant vocabulary the
// exhaustive-switch rule enforces: the family's display name, the
// directory whose package declares it, the declared type of its
// members, and the member-name prefix that distinguishes them from
// unrelated constants of the same type.
type enumFamily struct {
	name    string // display name for messages
	dir     string // base name of the declaring package directory
	typ     string // declared constant type
	prefix  string // member-name prefix
	members map[string]bool
}

// switchFamilies lists the enforced vocabularies. Membership is
// harvested from the declaring package at check time, so adding a Kind
// or a RecordType automatically widens every adopted switch's
// obligation.
func switchFamilies() []*enumFamily {
	return []*enumFamily{
		{name: "resilience.Kind", dir: "resilience", typ: "Kind", prefix: "Kind"},
		{name: "jobs WAL record type", dir: "jobs", typ: "RecordType", prefix: "Rec"},
	}
}

// collectFamilyMembers scans a declaring package's files for the
// family's constants. Iota blocks carry the type only on their first
// spec; a bare spec (no type, no values) inherits it.
func collectFamilyMembers(fam *enumFamily, files map[string]*ast.File) {
	fam.members = make(map[string]bool)
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			currentType := ""
			for _, s := range gd.Specs {
				vs, ok := s.(*ast.ValueSpec)
				if !ok {
					continue
				}
				switch {
				case vs.Type != nil:
					if ident, ok := vs.Type.(*ast.Ident); ok {
						currentType = ident.Name
					} else {
						currentType = ""
					}
				case len(vs.Values) > 0:
					// Explicit values without a type: untyped constants,
					// not family members.
					currentType = ""
				}
				if currentType != fam.typ {
					continue
				}
				for _, name := range vs.Names {
					if strings.HasPrefix(name.Name, fam.prefix) {
						fam.members[name.Name] = true
					}
				}
			}
		}
	}
}

// checkExhaustiveSwitches enforces the closed-vocabulary rule: any
// tagged switch naming at least two members of one family must name
// them all. The default clause does not discharge a missing member.
func checkExhaustiveSwitches(fset *token.FileSet, files map[string]*ast.File) []Finding {
	families := switchFamilies()
	for _, fam := range families {
		pkgFiles := make(map[string]*ast.File)
		for path, f := range files {
			if filepath.Base(filepath.Dir(path)) == fam.dir {
				pkgFiles[path] = f
			}
		}
		collectFamilyMembers(fam, pkgFiles)
	}

	var findings []Finding
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, path := range paths {
		ast.Inspect(files[path], func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			labels := caseLabelNames(sw)
			for _, fam := range families {
				if len(fam.members) == 0 {
					continue
				}
				named := 0
				for _, l := range labels {
					if fam.members[l] {
						named++
					}
				}
				if named < 2 || named == len(fam.members) {
					continue
				}
				var missing []string
				for m := range fam.members {
					found := false
					for _, l := range labels {
						if l == m {
							found = true
							break
						}
					}
					if !found {
						missing = append(missing, m)
					}
				}
				sort.Strings(missing)
				findings = append(findings, Finding{
					File:  path,
					Line:  fset.Position(sw.Pos()).Line,
					Check: "exhaustive-switch",
					Message: fmt.Sprintf("switch adopts the %s family (%d of %d members named) but misses %s; a default clause does not excuse a missing member",
						fam.name, named, len(fam.members), strings.Join(missing, ", ")),
				})
			}
			return true
		})
	}
	return findings
}

// caseLabelNames flattens a switch's case labels to their final
// identifier names: a plain Ident (same-package member) or the
// selector of a qualified reference (resilience.KindInternal).
func caseLabelNames(sw *ast.SwitchStmt) []string {
	var out []string
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			switch e := expr.(type) {
			case *ast.Ident:
				out = append(out, e.Name)
			case *ast.SelectorExpr:
				out = append(out, e.Sel.Name)
			}
		}
	}
	return out
}
