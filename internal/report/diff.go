// Cross-implementation differential reporting: given the verdict sets a
// campaign produced for several (implementation, fault-spec) columns,
// surface which properties diverge between them — the batch-service
// counterpart of Table I's per-implementation matrix.
package report

import (
	"fmt"
	"sort"
	"strings"

	"prochecker/internal/core/props"
	"prochecker/internal/jobs"
)

// DiffColumn is one campaign cell's verdict set under a human-readable
// label (typically "impl" or "impl+faultspec").
type DiffColumn struct {
	Label    string
	Verdicts []jobs.Verdict
}

// DiffRow is one property's outcome across every column. Verdicts maps
// column label to the verdict word ("attack", "verified",
// "inconclusive", or "-" when the column never checked the property).
type DiffRow struct {
	PropertyID string            `json:"property_id"`
	Verdicts   map[string]string `json:"verdicts"`
	Diverges   bool              `json:"diverges"`
}

// diffWord collapses a verdict onto the matrix vocabulary.
func diffWord(v jobs.Verdict) string {
	switch {
	case v.AttackFound:
		return "attack"
	case v.Verified:
		return "verified"
	default:
		return "inconclusive"
	}
}

// Differential assembles the cross-column matrix, one row per property
// that any column checked, in catalogue order (IDs outside the
// catalogue follow, sorted). A row diverges when two columns that both
// checked the property reached different verdict words.
func Differential(cols []DiffColumn) []DiffRow {
	byProp := make(map[string]map[string]string)
	for _, col := range cols {
		for _, v := range col.Verdicts {
			if byProp[v.ID] == nil {
				byProp[v.ID] = make(map[string]string)
			}
			byProp[v.ID][col.Label] = diffWord(v)
		}
	}

	var ordered []string
	seen := make(map[string]bool)
	for _, p := range props.Catalogue() {
		if byProp[p.ID] != nil {
			ordered = append(ordered, p.ID)
			seen[p.ID] = true
		}
	}
	var extra []string
	for id := range byProp {
		if !seen[id] {
			extra = append(extra, id)
		}
	}
	sort.Strings(extra)
	ordered = append(ordered, extra...)

	rows := make([]DiffRow, 0, len(ordered))
	for _, id := range ordered {
		row := DiffRow{PropertyID: id, Verdicts: make(map[string]string, len(cols))}
		first := ""
		for _, col := range cols {
			word, ok := byProp[id][col.Label]
			if !ok {
				row.Verdicts[col.Label] = "-"
				continue
			}
			row.Verdicts[col.Label] = word
			if first == "" {
				first = word
			} else if word != first {
				row.Diverges = true
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Diverging lists the property IDs whose verdicts differ across
// columns, in row order.
func Diverging(rows []DiffRow) []string {
	var out []string
	for _, r := range rows {
		if r.Diverges {
			out = append(out, r.PropertyID)
		}
	}
	return out
}

// RenderDifferential renders the matrix as a fixed-width table,
// flagging diverging rows.
func RenderDifferential(cols []DiffColumn, rows []DiffRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Campaign differential report (%d columns, %d properties)\n\n", len(cols), len(rows))
	widths := make([]int, len(cols))
	for i, col := range cols {
		widths[i] = len(col.Label)
		if widths[i] < len("inconclusive") {
			widths[i] = len("inconclusive")
		}
	}
	fmt.Fprintf(&b, "%-5s", "PROP")
	for i, col := range cols {
		fmt.Fprintf(&b, " %-*s", widths[i], col.Label)
	}
	b.WriteString("\n")
	diverging := 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5s", r.PropertyID)
		for i, col := range cols {
			fmt.Fprintf(&b, " %-*s", widths[i], r.Verdicts[col.Label])
		}
		if r.Diverges {
			b.WriteString(" << diverges")
			diverging++
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "\n%d of %d properties diverge across columns\n", diverging, len(rows))
	return b.String()
}
