package report

import (
	"testing"

	"prochecker/internal/core/props"
	"prochecker/internal/ue"
)

func esmVerdict(t *testing.T, profile ue.Profile, propID string) Verdict {
	t.Helper()
	m, err := BuildESMModel(profile)
	if err != nil {
		t.Fatalf("BuildESMModel(%s): %v", profile, err)
	}
	ev := NewEvaluator(m)
	for _, p := range props.ESMCatalogue() {
		if p.ID != propID {
			continue
		}
		v, err := ev.Evaluate(p)
		if err != nil {
			t.Fatalf("Evaluate(%s): %v", propID, err)
		}
		return v
	}
	t.Fatalf("ESM property %s not found", propID)
	return Verdict{}
}

func TestESMModelBuilds(t *testing.T) {
	m, err := BuildESMModel(ue.ProfileConformant)
	if err != nil {
		t.Fatalf("BuildESMModel: %v", err)
	}
	if m.Stats.Transitions < 3 {
		t.Errorf("ESM transitions = %d, want >= 3", m.Stats.Transitions)
	}
}

// TestESMPlainActivationOnlyOAI: I2's reach into the session-management
// layer, verified on the per-layer composition.
func TestESMPlainActivationOnlyOAI(t *testing.T) {
	if v := esmVerdict(t, ue.ProfileOAI, "E01"); !v.Detected {
		t.Errorf("oai: E01 missed: %s", v.Detail)
	}
	if v := esmVerdict(t, ue.ProfileConformant, "E01"); v.Detected {
		t.Errorf("conformant: E01 falsely detected: %s", v.Detail)
	}
}

// TestESMReplayOnlyQuirkyProfiles: I1 at the ESM layer.
func TestESMReplayOnlyQuirkyProfiles(t *testing.T) {
	if v := esmVerdict(t, ue.ProfileSRS, "E02"); !v.Detected {
		t.Errorf("srs: E02 missed: %s", v.Detail)
	}
	if v := esmVerdict(t, ue.ProfileOAI, "E02"); !v.Detected {
		t.Errorf("oai: E02 missed: %s", v.Detail)
	}
	if v := esmVerdict(t, ue.ProfileConformant, "E02"); v.Detected {
		t.Errorf("conformant: E02 falsely detected: %s", v.Detail)
	}
}

// TestESMDenialOfService: dropping bearer activations denies PDN
// connectivity (the P3 pattern at the session layer).
func TestESMDenialOfService(t *testing.T) {
	if v := esmVerdict(t, ue.ProfileConformant, "E03"); !v.Detected {
		t.Errorf("E03 (PDN connectivity completes) not violated under drops: %s", v.Detail)
	}
}

// TestESMForgeryDischarged: the CEGAR loop refutes forged activations on
// the ESM composition too.
func TestESMForgeryDischarged(t *testing.T) {
	if v := esmVerdict(t, ue.ProfileSRS, "E04"); !v.Verified {
		t.Errorf("E04 not verified: %s", v.Detail)
	}
}

func TestESMAPNConfidentiality(t *testing.T) {
	if v := esmVerdict(t, ue.ProfileConformant, "E05"); !v.Verified {
		t.Errorf("E05 not verified: %s", v.Detail)
	}
}
