// Package report assembles the paper's evaluation artifacts from the
// library's components: the attack-detection matrix (Table I), the
// LTEInspector-common property list (Table II), the per-property
// verification timings (Figure 8), the RQ2 refinement comparison
// (Section VII-B and Figure 7), NAS coverage, and the SQN staleness
// analysis of Section VII-A.
package report

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"prochecker/internal/conformance"
	"prochecker/internal/core/cegar"
	"prochecker/internal/core/extract"
	"prochecker/internal/core/fsmodel"
	"prochecker/internal/core/props"
	"prochecker/internal/core/threat"
	"prochecker/internal/dataflow"
	"prochecker/internal/lint"
	"prochecker/internal/ltemodels"
	"prochecker/internal/mc"
	"prochecker/internal/obs"
	"prochecker/internal/resilience"
	"prochecker/internal/spec"
	"prochecker/internal/ue"
)

// Model bundles everything built for one implementation profile.
type Model struct {
	Profile  ue.Profile
	Suite    *conformance.Report
	FSM      *fsmodel.FSM
	Stats    extract.Stats
	Composed *threat.Composed
	// Lint is the static pre-check report over FSM and Composed, run as
	// part of the build so every consumer (CLI gate, manifest, job
	// records) reads one shared verdict.
	Lint *lint.Report
}

// BuildModel runs the full extraction pipeline for one profile:
// conformance suite -> information-rich log -> Algorithm 1 -> threat
// composition with the community MME model.
func BuildModel(profile ue.Profile) (*Model, error) {
	return BuildModelContext(context.Background(), profile)
}

// BuildModelContext is BuildModel with cancellation threaded through the
// conformance run; a cancelled build returns an error wrapping
// resilience.ErrCancelled.
func BuildModelContext(ctx context.Context, profile ue.Profile) (*Model, error) {
	return BuildModelOptions(ctx, profile, conformance.RunOptions{})
}

// BuildModelOptions is BuildModelContext with control over the
// conformance run — in particular its link adversary, so a model can be
// extracted from a suite perturbed by seeded fault injection (the batch
// service's fault-matrix campaigns ride on this). The build is one
// "pipeline.build_model" span with the conformance run (which spans
// itself), the log dissection/extraction and the threat composition as
// children.
func BuildModelOptions(ctx context.Context, profile ue.Profile, runOpts conformance.RunOptions) (m *Model, err error) {
	ctx, span := obs.Start(ctx, "pipeline.build_model", obs.A("profile", profile.String()))
	defer func() { span.EndErr(err) }()

	suite, err := conformance.RunSuiteContext(ctx, profile, true, runOpts)
	if err != nil {
		return nil, fmt.Errorf("report: running conformance suite: %w", err)
	}

	_, exSpan := obs.Start(ctx, "extract.model")
	sig := spec.UESignatures(ue.StyleFor(profile))
	fsm, stats, err := extract.ModelWithStats(suite.Log, sig, extract.Options{Name: "UE/" + profile.String()})
	if err != nil {
		exSpan.EndErr(err)
		return nil, fmt.Errorf("report: extracting model: %w", err)
	}
	states, conds, actions, transitions := fsm.Size()
	exSpan.SetAttr("states", fmt.Sprint(states))
	exSpan.SetAttr("transitions", fmt.Sprint(transitions))
	exSpan.End()
	if reg := obs.FromContext(ctx).Metrics(); reg != nil {
		reg.Counter("extract.models").Inc()
		reg.Gauge("extract.fsm_states").Set(int64(states))
		reg.Gauge("extract.fsm_conditions").Set(int64(conds))
		reg.Gauge("extract.fsm_actions").Set(int64(actions))
		reg.Gauge("extract.fsm_transitions").Set(int64(transitions))
	}

	_, thSpan := obs.Start(ctx, "threat.compose")
	composed, err := threat.Compose(threat.Config{
		Name:                 "IMP/" + profile.String(),
		UE:                   fsm,
		MME:                  ltemodels.MME(),
		SuperviseGUTIRealloc: true,
	})
	if err != nil {
		thSpan.EndErr(err)
		return nil, fmt.Errorf("report: composing threat model: %w", err)
	}
	thSpan.End()
	lintRep := lintModel(ctx, fsm, composed)
	return &Model{Profile: profile, Suite: suite, FSM: fsm, Stats: stats, Composed: composed, Lint: lintRep}, nil
}

// lintModel runs the static pre-check phase over a freshly built model,
// recording its own span and the lint.* metrics. Diagnostics never fail
// the build — gating on them is the caller's policy (Analysis.LintGate,
// the CLI's -lint mode, ci.sh).
func lintModel(ctx context.Context, fsm *fsmodel.FSM, composed *threat.Composed) *lint.Report {
	_, span := obs.Start(ctx, "lint.model")
	rep := lint.Run(&lint.Target{FSM: fsm, Composed: composed})
	errs, warns, infos := rep.Counts()
	span.SetAttr("errors", fmt.Sprint(errs))
	span.SetAttr("warnings", fmt.Sprint(warns))
	span.SetAttr("infos", fmt.Sprint(infos))
	span.End()
	if reg := obs.FromContext(ctx).Metrics(); reg != nil {
		reg.Counter("lint.runs").Inc()
		reg.Gauge("lint.diagnostics").Set(int64(len(rep.Diagnostics)))
		reg.Gauge("lint.errors").Set(int64(errs))
		reg.Gauge("lint.warnings").Set(int64(warns))
		reg.Gauge("lint.infos").Set(int64(infos))
	}
	return rep
}

// BuildESMModel runs the per-layer pipeline for the session-management
// layer: the same conformance log, dissected with the ESM signatures,
// composed with the hand-built network-side ESM machine.
func BuildESMModel(profile ue.Profile) (*Model, error) {
	suite, err := conformance.RunSuite(profile, true)
	if err != nil {
		return nil, fmt.Errorf("report: running conformance suite: %w", err)
	}
	sig := spec.ESMSignatures(ue.StyleFor(profile))
	fsm, stats, err := extract.ModelWithStats(suite.Log, sig, extract.Options{
		Name:    "UE-ESM/" + profile.String(),
		Initial: fsmodel.State(spec.BearerInactive),
	})
	if err != nil {
		return nil, fmt.Errorf("report: extracting ESM model: %w", err)
	}
	composed, err := threat.Compose(threat.Config{
		Name:       "IMP-ESM/" + profile.String(),
		UE:         fsm,
		MME:        ltemodels.MMEESM(),
		UEInternal: ltemodels.UEESMInternal(),
	})
	if err != nil {
		return nil, fmt.Errorf("report: composing ESM threat model: %w", err)
	}
	lintRep := lintModel(context.Background(), fsm, composed)
	return &Model{Profile: profile, Suite: suite, FSM: fsm, Stats: stats, Composed: composed, Lint: lintRep}, nil
}

// ESMVerdicts evaluates the session-management property extension on one
// profile.
func ESMVerdicts(profile ue.Profile) ([]Verdict, error) {
	m, err := BuildESMModel(profile)
	if err != nil {
		return nil, err
	}
	ev := NewEvaluator(m)
	var out []Verdict
	for _, p := range props.ESMCatalogue() {
		v, err := ev.Evaluate(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// Verdict is one property's outcome on one implementation.
type Verdict struct {
	PropertyID string
	Verified   bool
	Detected   bool
	Detail     string
	Duration   time.Duration
	States     int
	Iterations int
	// Vacuous marks a model-checked property discharged by the static
	// vacuity pre-pass: its trigger matches no statically-fireable rule,
	// so it verified without exploration (States stays zero).
	Vacuous bool
}

// Evaluator runs properties against a built model, caching outcomes.
// It is safe for concurrent use: concurrent evaluations of distinct
// properties proceed in parallel, while concurrent evaluations of the
// same property are collapsed into one run.
type Evaluator struct {
	model *Model
	cfg   cegar.Config

	mu       sync.Mutex
	cache    map[string]Verdict
	inflight map[string]*evalCall
	// reach caches the static reachability fixpoint per system
	// generation for the vacuity pre-check.
	reach    *dataflow.RuleReach
	reachGen uint64
}

// evalCall is one in-flight property evaluation; done is closed when the
// verdict (or error) is available.
type evalCall struct {
	done chan struct{}
	v    Verdict
	err  error
}

// NewEvaluator builds an evaluator with the paper's threat configuration
// (pre-capture phase enabled, COTS SQN scheme without freshness limit).
func NewEvaluator(m *Model) *Evaluator {
	return &Evaluator{
		model:    m,
		cfg:      cegar.Config{PreCapture: true},
		cache:    make(map[string]Verdict),
		inflight: make(map[string]*evalCall),
	}
}

// SetWorkers bounds the evaluator's property-level parallelism and the
// model checker's exploration pool (0 restores the GOMAXPROCS default).
// Call it before evaluations start; it is not synchronised with them.
func (e *Evaluator) SetWorkers(n int) {
	e.cfg.Workers = n
}

// SetMC tunes the model checker's exploration storage: shard count,
// memory budget and spill directory, snapshot/resume directory. Worker
// bounds still come from SetWorkers unless opts.Workers is set
// explicitly. Call it before evaluations start; it is not synchronised
// with them.
func (e *Evaluator) SetMC(opts mc.Options) {
	workers := e.cfg.MC.Workers
	e.cfg.MC = opts
	if e.cfg.MC.Workers == 0 {
		e.cfg.MC.Workers = workers
	}
}

func (e *Evaluator) workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Evaluate runs one catalogue property.
func (e *Evaluator) Evaluate(p props.Property) (Verdict, error) {
	return e.EvaluateContext(context.Background(), p)
}

// EvaluateContext is Evaluate with cancellation threaded into the CEGAR
// loop and the live equivalence scenarios. Cancelled evaluations are
// not cached, so a later call with a live context re-runs the property.
func (e *Evaluator) EvaluateContext(ctx context.Context, p props.Property) (Verdict, error) {
	e.mu.Lock()
	if v, ok := e.cache[p.ID]; ok {
		e.mu.Unlock()
		return v, nil
	}
	if c, ok := e.inflight[p.ID]; ok {
		e.mu.Unlock()
		select {
		case <-c.done:
			return c.v, c.err
		case <-ctx.Done():
			return Verdict{}, fmt.Errorf("report: verifying %s: %w", p.ID, resilience.ErrCancelled)
		}
	}
	c := &evalCall{done: make(chan struct{})}
	e.inflight[p.ID] = c
	e.mu.Unlock()

	c.v, c.err = e.evaluate(ctx, p)

	e.mu.Lock()
	delete(e.inflight, p.ID)
	if c.err == nil {
		e.cache[p.ID] = c.v
	}
	e.mu.Unlock()
	close(c.done)
	return c.v, c.err
}

// evaluate runs one property uncached. Each evaluation is one
// "property.evaluate" span and feeds the per-property latency
// histogram; evaluations running concurrently in the EvaluateAllContext
// pool become sibling spans under the caller's span.
func (e *Evaluator) evaluate(ctx context.Context, p props.Property) (_ Verdict, err error) {
	start := time.Now()
	ctx, span := obs.Start(ctx, "property.evaluate", obs.A("property", p.ID), obs.A("kind", string(p.Kind)))
	defer func() { span.EndErr(err) }()
	defer func() {
		if reg := obs.FromContext(ctx).Metrics(); reg != nil {
			ms := obs.DurMS(time.Since(start))
			reg.Counter("report.properties_checked").Inc()
			reg.Histogram("report.property_check_ms", nil).Observe(ms)
			reg.Gauge("report.check_ms." + p.ID).Set(int64(ms))
		}
	}()
	var v Verdict
	v.PropertyID = p.ID
	switch p.Kind {
	case props.KindMC:
		if vac, witness := e.vacuityCheck(p); vac {
			v.Verified = true
			v.Vacuous = true
			v.Detail = "vacuously holds: " + witness
			v.Duration = time.Since(start)
			span.SetAttr("verdict", verdictWord(v))
			if reg := obs.FromContext(ctx).Metrics(); reg != nil {
				reg.Counter("mc.vacuity_pruned").Inc()
			}
			return v, nil
		}
		out, err := cegar.VerifyContext(ctx, e.model.Composed, p.MC(), e.cfg)
		if err != nil {
			return Verdict{}, fmt.Errorf("report: verifying %s: %w", p.ID, err)
		}
		v.Verified = out.Verified
		v.Detected = out.Attack != nil
		v.States = out.StatesExplored
		v.Iterations = out.Iterations
		switch {
		case out.Attack != nil:
			v.Detail = fmt.Sprintf("attack in %d step(s) after %d iteration(s)", len(out.Attack.Steps), out.Iterations)
		case out.Unknown:
			v.Detail = "inconclusive (bound hit)"
		default:
			v.Detail = fmt.Sprintf("verified over %d states", out.StatesExplored)
		}
	case props.KindEquivalence:
		res, err := props.EvaluateEquivalenceContext(ctx, *p.Equivalence, e.model.Profile)
		if err != nil {
			return Verdict{}, fmt.Errorf("report: equivalence %s: %w", p.ID, err)
		}
		v.Verified = res.Verified
		v.Detected = !res.Verified
		v.Detail = res.Detail
	case props.KindKnowledge:
		res := props.EvaluateKnowledge(*p.Knowledge)
		v.Verified = res.Verified
		v.Detected = !res.Verified
		v.Detail = res.Detail
	default:
		return Verdict{}, fmt.Errorf("report: property %s has unknown kind %q", p.ID, p.Kind)
	}
	v.Duration = time.Since(start)
	span.SetAttr("verdict", verdictWord(v))
	if v.Detected {
		if reg := obs.FromContext(ctx).Metrics(); reg != nil {
			reg.Counter("report.attacks_found").Inc()
		}
	}
	return v, nil
}

// vacuityCheck runs the static vacuity pre-pass for a model-checked
// property on the composed base system, caching the abstract
// reachability fixpoint per system generation. Disabled by the
// MC.NoVacuityPrune escape hatch.
func (e *Evaluator) vacuityCheck(p props.Property) (bool, string) {
	if e.cfg.MC.NoVacuityPrune {
		return false, ""
	}
	sys := e.model.Composed.System
	gen := sys.Generation()
	e.mu.Lock()
	if e.reach == nil || e.reachGen != gen {
		e.reach = mc.StaticReach(sys)
		e.reachGen = gen
	}
	reach := e.reach
	e.mu.Unlock()
	return mc.Vacuous(reach, sys, p.MC())
}

// verdictWord collapses a verdict to the manifest vocabulary.
func verdictWord(v Verdict) string {
	switch {
	case v.Detected:
		return "attack"
	case v.Vacuous:
		return "vacuously-holds"
	case v.Verified:
		return "verified"
	default:
		return "inconclusive"
	}
}

// EvaluateAllContext evaluates the properties over a bounded worker pool
// (SetWorkers, default GOMAXPROCS), returning verdicts in list order.
// The first evaluation error (in list order) is returned, matching a
// sequential walk; cancellation surfaces as resilience.ErrCancelled.
func (e *Evaluator) EvaluateAllContext(ctx context.Context, list []props.Property) ([]Verdict, error) {
	verdicts := make([]Verdict, len(list))
	errs := make([]error, len(list))
	workers := e.workers()
	if workers > len(list) {
		workers = len(list)
	}

	if workers <= 1 {
		for i, p := range list {
			if ctx.Err() != nil {
				break
			}
			verdicts[i], errs[i] = e.EvaluateContext(ctx, p)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					verdicts[i], errs[i] = e.EvaluateContext(ctx, list[i])
				}
			}()
		}
		for i := range list {
			if ctx.Err() != nil {
				break
			}
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("report: catalogue stopped: %w", resilience.ErrCancelled)
	}
	return verdicts, nil
}

// AttackInfo is one Table I row's metadata.
type AttackInfo struct {
	ID          string
	Name        string
	PropType    string // Security / Privacy / Security-Privacy
	Implication string
	VulnType    string // Standards / Implementation
	New         bool
}

// TableIAttacks lists the 23 Table I rows in paper order.
func TableIAttacks() []AttackInfo {
	return []AttackInfo{
		{props.AttackP1, "(P1) Service disruption using authentication_request", "Security", "Service disruption", "Standards", true},
		{props.AttackP2, "(P2) Linkability using authentication_response", "Privacy", "Location privacy leakage", "Standards", true},
		{props.AttackP3, "(P3) Selective service dropping", "Security", "Surreptitious service disruption", "Standards", true},
		{props.AttackI1, "(I1) Broken replay protection with all protected messages", "Security", "Broken replay protection", "Implementation", true},
		{props.AttackI2, "(I2) Broken integrity, confidentiality with all protected messages", "Security-Privacy", "Integrity, encryption broken", "Implementation", true},
		{props.AttackI3, "(I3) Counter-reset with replayed authentication_request", "Security", "Breaks replay protection", "Implementation", true},
		{props.AttackI4, "(I4) Security bypass with reject messages", "Security", "Security bypass", "Implementation", true},
		{props.AttackI5, "(I5) Privacy leakage with identity request", "Privacy", "IMSI leaking", "Implementation", true},
		{props.AttackI6, "(I6) Linkability with security_mode_command", "Privacy", "Location tracking", "Implementation", true},
		{props.AttackAuthSyncDoS, "Authentication sync. failure [2]", "Security", "Denial of Service", "Standards", false},
		{props.AttackKickOff, "Stealthy kicking-off [2]", "Security", "Detaching victim surreptitiously", "Standards", false},
		{props.AttackPanic, "Panic attack [2]", "Security", "Creating artificial chaos", "Standards", false},
		{props.AttackTMSILink, "Linkability using TMSI_reallocation [26]", "Privacy", "Location privacy leak", "Standards", false},
		{props.AttackIMSIPaging, "Linkability IMSI to GUTI using paging_request [25]", "Privacy", "Location privacy leak", "Standards", false},
		{props.AttackSyncFailLink, "Linkability using auth_sync_failure [25]", "Privacy", "Location privacy leak", "Standards", false},
		{props.AttackAuthRelay, "Authentication relay [2]", "Security-Privacy", "DoS, location history poisoning", "Standards", false},
		{props.AttackNumb, "Numb attack [2]", "Security", "Prolonged DoS, battery depletion", "Standards", false},
		{props.AttackTAUDowngrade, "Downgrade using tracking_area_reject [6]", "Security", "DoS", "Standards", false},
		{props.AttackDenialAll, "Denial of all services [6]", "Security", "DoS", "Standards", false},
		{props.AttackPagingHijack, "Paging hijacking [2]", "Security", "Stealthy DoS, panic", "Standards", false},
		{props.AttackDetachDown, "Detach/Downgrade [2]", "Security", "DoS, battery depletion", "Standards", false},
		{props.AttackServiceDenial, "Service Denial [2]", "Security", "DoS", "Standards", false},
		{props.AttackGUTILink, "Linkability (GUTI/TMSI) [2]", "Privacy", "Location Tracking", "Standards", false},
	}
}

// Detection is one Table I cell.
type Detection struct {
	Detected bool
	Via      string // property ID that witnessed the attack
}

// AttackRow is one assembled Table I row.
type AttackRow struct {
	AttackInfo
	PerProfile map[ue.Profile]Detection
}

// TableI runs the full detection matrix: for every attack and profile,
// the attack's detecting properties are evaluated until one reports a
// realizable counterexample. The per-profile pipelines are independent
// and run concurrently.
func TableI(profiles []ue.Profile) ([]AttackRow, error) {
	type profileResult struct {
		detections map[string]Detection // attack ID -> cell
		err        error
	}
	results := make([]profileResult, len(profiles))
	var wg sync.WaitGroup
	for i, profile := range profiles {
		wg.Add(1)
		go func(i int, profile ue.Profile) {
			defer wg.Done()
			m, err := BuildModel(profile)
			if err != nil {
				results[i].err = err
				return
			}
			eval := NewEvaluator(m)
			detections := make(map[string]Detection)
			for _, info := range TableIAttacks() {
				for _, prop := range props.Detecting(info.ID) {
					v, err := eval.Evaluate(prop)
					if err != nil {
						results[i].err = err
						return
					}
					if v.Detected {
						detections[info.ID] = Detection{Detected: true, Via: prop.ID}
						break
					}
				}
			}
			results[i].detections = detections
		}(i, profile)
	}
	wg.Wait()
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
	}
	var rows []AttackRow
	for _, info := range TableIAttacks() {
		row := AttackRow{AttackInfo: info, PerProfile: make(map[ue.Profile]Detection, len(profiles))}
		for i, profile := range profiles {
			row.PerProfile[profile] = results[i].detections[info.ID]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTableI renders the matrix in the paper's layout (● detected,
// ○ not detected).
func RenderTableI(rows []AttackRow, profiles []ue.Profile) string {
	var b strings.Builder
	b.WriteString("TABLE I: Attacks detected by ProChecker\n\n")
	fmt.Fprintf(&b, "%-68s %-10s %-15s", "Attack", "Type", "Vulnerability")
	for _, p := range profiles {
		fmt.Fprintf(&b, " %-12s", p)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 96+13*len(profiles)) + "\n")
	section := true
	for _, r := range rows {
		if section && !r.New {
			b.WriteString(strings.Repeat("-", 40) + " previous attacks " + strings.Repeat("-", 40) + "\n")
			section = false
		}
		fmt.Fprintf(&b, "%-68s %-10s %-15s", r.Name, r.PropType, r.VulnType)
		for _, p := range profiles {
			d := r.PerProfile[p]
			mark := "○"
			if d.Detected {
				mark = "● (" + d.Via + ")"
			}
			fmt.Fprintf(&b, " %-12s", mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderTableII renders the LTEInspector-common property list.
func RenderTableII() string {
	var b strings.Builder
	b.WriteString("TABLE II: Common properties of ProChecker and LTEInspector\n\n")
	for i, p := range props.CommonWithLTEInspector() {
		fmt.Fprintf(&b, "%2d. [%s] %s\n    %s\n", i+1, p.ID, p.CommonLTEInspector, p.Text)
	}
	return b.String()
}

// TimingRow is one Figure 8 data point.
type TimingRow struct {
	Index      int
	PropertyID string
	Pro        time.Duration
	LTE        time.Duration
	ProStates  int
	LTEStates  int
}

// Figure8 verifies the 14 common properties on the extracted model of the
// given profile (Proᵘ) and on the LTEInspector model (LTEᵘ), recording
// execution times — the RQ3 scalability experiment.
func Figure8(profile ue.Profile) ([]TimingRow, error) {
	pro, err := BuildModel(profile)
	if err != nil {
		return nil, err
	}
	lte, err := threat.Compose(threat.Config{
		Name:                 "IMP/LTEInspector",
		UE:                   ltemodels.LTEInspectorUE(),
		MME:                  ltemodels.MME(),
		UEInternal:           []fsmodel.Transition{},
		SuperviseGUTIRealloc: true,
	})
	if err != nil {
		return nil, err
	}
	cfg := cegar.Config{PreCapture: true}
	var rows []TimingRow
	for i, p := range props.CommonWithLTEInspector() {
		row := TimingRow{Index: i + 1, PropertyID: p.ID}

		start := time.Now()
		proOut, err := cegar.Verify(pro.Composed, p.MC(), cfg)
		if err != nil {
			return nil, fmt.Errorf("report: fig8 %s on Pro: %w", p.ID, err)
		}
		row.Pro = time.Since(start)
		row.ProStates = proOut.StatesExplored

		start = time.Now()
		lteOut, err := cegar.Verify(lte, p.MC(), cfg)
		if err != nil {
			return nil, fmt.Errorf("report: fig8 %s on LTE: %w", p.ID, err)
		}
		row.LTE = time.Since(start)
		row.LTEStates = lteOut.StatesExplored
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure8 renders the timing comparison as an ASCII chart.
func RenderFigure8(rows []TimingRow) string {
	var b strings.Builder
	b.WriteString("FIGURE 8: Execution time of the common properties (ProChecker vs LTEInspector model)\n\n")
	var maxDur time.Duration
	for _, r := range rows {
		if r.Pro > maxDur {
			maxDur = r.Pro
		}
		if r.LTE > maxDur {
			maxDur = r.LTE
		}
	}
	if maxDur == 0 {
		maxDur = time.Millisecond
	}
	const width = 40
	bar := func(d time.Duration) string {
		n := int(int64(d) * width / int64(maxDur))
		return strings.Repeat("#", n)
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%2d %-4s Pro %-40s %8.1fms (%d states)\n", r.Index, r.PropertyID, bar(r.Pro), float64(r.Pro.Microseconds())/1000, r.ProStates)
		fmt.Fprintf(&b, "        LTE %-40s %8.1fms (%d states)\n", bar(r.LTE), float64(r.LTE.Microseconds())/1000, r.LTEStates)
	}
	var proTotal, lteTotal time.Duration
	for _, r := range rows {
		proTotal += r.Pro
		lteTotal += r.LTE
	}
	ratio := float64(proTotal) / float64(lteTotal)
	fmt.Fprintf(&b, "\ntotal: ProChecker %v, LTEInspector %v (ratio %.2fx)\n", proTotal.Round(time.Millisecond), lteTotal.Round(time.Millisecond), ratio)
	return b.String()
}

// RefinementResult packages the RQ2 comparison.
type RefinementResult struct {
	Report  *fsmodel.Report
	Profile ue.Profile
	// CoarseSize / RefinedSize are (states, conditions, actions,
	// transitions) of each model.
	CoarseSize  [4]int
	RefinedSize [4]int
}

// Refinement runs the RQ2 comparison: the extracted model of the profile
// (plus the composition's internal transitions, which LTEInspector's
// model also contains) against the LTEInspector UE model.
func Refinement(profile ue.Profile) (*RefinementResult, error) {
	m, err := BuildModel(profile)
	if err != nil {
		return nil, err
	}
	refined := m.FSM.Clone()
	for _, tr := range threat.DefaultUEInternal() {
		refined.AddTransition(tr)
	}
	coarse := ltemodels.LTEInspectorUE()
	rep := fsmodel.CheckRefinement(coarse, refined, ltemodels.UEStateMapping())
	res := &RefinementResult{Report: rep, Profile: profile}
	s, c, a, t := coarse.Size()
	res.CoarseSize = [4]int{s, c, a, t}
	s, c, a, t = refined.Size()
	res.RefinedSize = [4]int{s, c, a, t}
	return res, nil
}

// RenderRefinement renders the RQ2 report including the Figure 7 mapping
// examples.
func RenderRefinement(res *RefinementResult) string {
	var b strings.Builder
	rep := res.Report
	fmt.Fprintf(&b, "RQ2: Refinement of LTEInspector's model by the extracted %s model\n\n", res.Profile)
	fmt.Fprintf(&b, "LTEInspector model: %d states, %d conditions, %d actions, %d transitions\n",
		res.CoarseSize[0], res.CoarseSize[1], res.CoarseSize[2], res.CoarseSize[3])
	fmt.Fprintf(&b, "ProChecker model:   %d states, %d conditions, %d actions, %d transitions\n\n",
		res.RefinedSize[0], res.RefinedSize[1], res.RefinedSize[2], res.RefinedSize[3])
	fmt.Fprintf(&b, "refines: %v\n", rep.Refines())
	counts := rep.CountByKind()
	fmt.Fprintf(&b, "transition mappings: %d direct, %d stricter-condition, %d split-via-new-states\n",
		counts[fsmodel.MappedDirect], counts[fsmodel.MappedStricter], counts[fsmodel.MappedSplit])
	fmt.Fprintf(&b, "new states: %v\n", rep.NewStates)
	fmt.Fprintf(&b, "new condition messages: %v\n", rep.NewConditionMessages)
	fmt.Fprintf(&b, "new predicates: %v\n\n", rep.NewPredicates)
	b.WriteString("Figure 7-style mapping examples:\n")
	shown := 0
	for _, m := range rep.Mappings {
		if m.Kind == fsmodel.MappedDirect || shown >= 4 {
			continue
		}
		fmt.Fprintf(&b, "  (%s)\n    LTE: %s\n", m.Kind, m.Coarse)
		for _, r := range m.Refined {
			fmt.Fprintf(&b, "    Pro: %s\n", r)
		}
		shown++
	}
	if problems := rep.Problems(); len(problems) > 0 {
		b.WriteString("\nproblems:\n")
		for _, p := range problems {
			b.WriteString("  " + p + "\n")
		}
	}
	return b.String()
}

// RenderCoverage renders the per-profile NAS coverage, base suite vs the
// suite extended with the paper's added test cases.
func RenderCoverage() (string, error) {
	var b strings.Builder
	b.WriteString("NAS-layer coverage by conformance suite (Section VI)\n\n")
	for _, p := range []ue.Profile{ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI} {
		full, err := conformance.RunSuite(p, true)
		if err != nil {
			return "", err
		}
		base, err := conformance.RunSuite(p, false)
		if err != nil {
			return "", err
		}
		added := len(conformance.SuiteFor(p, true)) - len(conformance.SuiteFor(p, false))
		fmt.Fprintf(&b, "%-12s base suite: %s\n", p.String()+":", base.Coverage)
		fmt.Fprintf(&b, "%-12s +%d cases:  %s\n", "", added, full.Coverage)
		if misses := full.Coverage.MissingTestHints(); len(misses) > 0 {
			sort.Strings(misses)
			fmt.Fprintf(&b, "%-12s missing-test hints: %d (e.g. %s)\n", "", len(misses), misses[0])
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// RenderDeviations diffs each open-source profile's extracted model
// against the conformant one, surfacing the implementation deviations
// (the I1-I6 behaviour) directly from the models — before any property
// is even checked.
func RenderDeviations() (string, error) {
	reference, err := BuildModel(ue.ProfileConformant)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Implementation deviations by FSM diff (subject vs conformant reference)\n\n")
	for _, p := range []ue.Profile{ue.ProfileSRS, ue.ProfileOAI} {
		subject, err := BuildModel(p)
		if err != nil {
			return "", err
		}
		rep := fsmodel.Deviations(subject.FSM, reference.FSM)
		b.WriteString(rep.String())
		b.WriteString("\n")
	}
	return b.String(), nil
}

// VerifyAllProperties evaluates the complete 62-property catalogue on one
// profile, returning verdicts in catalogue order.
func VerifyAllProperties(profile ue.Profile) ([]Verdict, error) {
	m, err := BuildModel(profile)
	if err != nil {
		return nil, err
	}
	ev := NewEvaluator(m)
	return ev.EvaluateAllContext(context.Background(), props.Catalogue())
}

// RenderVerdicts summarises a full catalogue run.
func RenderVerdicts(profile ue.Profile, verdicts []Verdict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Property verdicts for %s (%d properties)\n\n", profile, len(verdicts))
	detected := 0
	for _, v := range verdicts {
		mark := "verified"
		if v.Detected {
			mark = "ATTACK"
			detected++
		} else if !v.Verified {
			mark = "inconclusive"
		}
		fmt.Fprintf(&b, "  %-4s %-12s %s\n", v.PropertyID, mark, v.Detail)
	}
	fmt.Fprintf(&b, "\n%d/%d properties violated (attacks)\n", detected, len(verdicts))
	return b.String()
}
