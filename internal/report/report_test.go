package report

import (
	"strings"
	"testing"

	"prochecker/internal/core/props"
	"prochecker/internal/ue"
)

// evaluators are built once: model building runs the whole conformance +
// extraction pipeline.
var evalCache = map[ue.Profile]*Evaluator{}

func evaluator(t *testing.T, p ue.Profile) *Evaluator {
	t.Helper()
	if e, ok := evalCache[p]; ok {
		return e
	}
	m, err := BuildModel(p)
	if err != nil {
		t.Fatalf("BuildModel(%s): %v", p, err)
	}
	e := NewEvaluator(m)
	evalCache[p] = e
	return e
}

func verdict(t *testing.T, profile ue.Profile, propID string) Verdict {
	t.Helper()
	p, ok := props.ByID(propID)
	if !ok {
		t.Fatalf("property %s not found", propID)
	}
	v, err := evaluator(t, profile).Evaluate(p)
	if err != nil {
		t.Fatalf("Evaluate(%s, %s): %v", profile, propID, err)
	}
	return v
}

func TestBuildModelAllProfiles(t *testing.T) {
	for _, p := range []ue.Profile{ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI} {
		m, err := BuildModel(p)
		if err != nil {
			t.Fatalf("BuildModel(%s): %v", p, err)
		}
		if m.Stats.Transitions < 10 {
			t.Errorf("%s: only %d transitions extracted", p, m.Stats.Transitions)
		}
		if len(m.Composed.System.Rules()) < 50 {
			t.Errorf("%s: only %d rules composed", p, len(m.Composed.System.Rules()))
		}
	}
}

// TestP1DetectedEverywhere: S06 is the paper's P1 property; the flaw is
// in the standard, so every implementation's model is vulnerable.
func TestP1DetectedEverywhere(t *testing.T) {
	for _, p := range []ue.Profile{ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI} {
		v := verdict(t, p, "S06")
		if !v.Detected {
			t.Errorf("%s: P1 (S06) not detected: %s", p, v.Detail)
		}
	}
}

// TestI1DetectionMatchesTableI: broken replay protection is an
// implementation issue of the open-source stacks only.
func TestI1DetectionMatchesTableI(t *testing.T) {
	if v := verdict(t, ue.ProfileConformant, "S08"); v.Detected {
		t.Errorf("conformant: I1 (S08) falsely detected: %s", v.Detail)
	}
	if v := verdict(t, ue.ProfileSRS, "S08"); !v.Detected {
		t.Errorf("srs: I1 (S08) missed: %s", v.Detail)
	}
	if v := verdict(t, ue.ProfileOAI, "S08"); !v.Detected {
		t.Errorf("oai: I1 (S08) missed: %s", v.Detail)
	}
}

func TestI2OnlyOAI(t *testing.T) {
	if v := verdict(t, ue.ProfileConformant, "S09"); v.Detected {
		t.Errorf("conformant: I2 falsely detected: %s", v.Detail)
	}
	if v := verdict(t, ue.ProfileSRS, "S09"); v.Detected {
		t.Errorf("srs: I2 falsely detected: %s", v.Detail)
	}
	if v := verdict(t, ue.ProfileOAI, "S09"); !v.Detected {
		t.Errorf("oai: I2 missed: %s", v.Detail)
	}
}

func TestI3OnlySRS(t *testing.T) {
	if v := verdict(t, ue.ProfileSRS, "S07"); !v.Detected {
		t.Errorf("srs: I3 missed: %s", v.Detail)
	}
	if v := verdict(t, ue.ProfileOAI, "S07"); v.Detected {
		t.Errorf("oai: I3 falsely detected: %s", v.Detail)
	}
	if v := verdict(t, ue.ProfileConformant, "S07"); v.Detected {
		t.Errorf("conformant: I3 falsely detected: %s", v.Detail)
	}
}

func TestI4OnlySRS(t *testing.T) {
	if v := verdict(t, ue.ProfileSRS, "S16"); !v.Detected {
		t.Errorf("srs: I4 missed: %s", v.Detail)
	}
	if v := verdict(t, ue.ProfileConformant, "S16"); v.Detected {
		t.Errorf("conformant: I4 falsely detected: %s", v.Detail)
	}
}

func TestI5OnlyOAI(t *testing.T) {
	if v := verdict(t, ue.ProfileOAI, "V01"); !v.Detected {
		t.Errorf("oai: I5 missed: %s", v.Detail)
	}
	if v := verdict(t, ue.ProfileConformant, "V01"); v.Detected {
		t.Errorf("conformant: I5 falsely detected: %s", v.Detail)
	}
	if v := verdict(t, ue.ProfileSRS, "V01"); v.Detected {
		t.Errorf("srs: I5 falsely detected: %s", v.Detail)
	}
}

func TestP3DetectedViaResponseProperty(t *testing.T) {
	v := verdict(t, ue.ProfileConformant, "S19")
	if !v.Detected {
		t.Errorf("P3 (S19) not detected: %s", v.Detail)
	}
}

func TestCryptographicPropertiesVerified(t *testing.T) {
	// The CEGAR loop must discharge forgery properties on every profile.
	for _, id := range []string{"S13", "S14", "S15", "S33"} {
		for _, p := range []ue.Profile{ue.ProfileConformant, ue.ProfileSRS} {
			v := verdict(t, p, id)
			if v.Detected {
				t.Errorf("%s/%s: forgery property violated: %s", p, id, v.Detail)
			}
			if !v.Verified {
				t.Errorf("%s/%s: forgery property inconclusive: %s", p, id, v.Detail)
			}
		}
	}
}

func TestRenderTableII(t *testing.T) {
	out := RenderTableII()
	if !strings.Contains(out, "TABLE II") {
		t.Error("missing header")
	}
	if got := strings.Count(out, "\n    "); got != 14 {
		t.Errorf("rendered %d property texts, want 14", got)
	}
}

func TestRefinementHoldsForConformant(t *testing.T) {
	res, err := Refinement(ue.ProfileConformant)
	if err != nil {
		t.Fatalf("Refinement: %v", err)
	}
	if !res.Report.Refines() {
		t.Errorf("extracted model does not refine LTEInspector's: %v", res.Report.Problems())
	}
	// The extracted model must be strictly richer.
	if res.RefinedSize[3] <= res.CoarseSize[3] {
		t.Errorf("refined transitions %d not above coarse %d", res.RefinedSize[3], res.CoarseSize[3])
	}
	if len(res.Report.NewPredicates) == 0 {
		t.Error("no new predicates; data-level refinement missing")
	}
	out := RenderRefinement(res)
	if !strings.Contains(out, "refines: true") {
		t.Errorf("rendered refinement lacks verdict:\n%s", out)
	}
}

func TestRenderCoverage(t *testing.T) {
	out, err := RenderCoverage()
	if err != nil {
		t.Fatalf("RenderCoverage: %v", err)
	}
	for _, want := range []string{"conformant", "srsLTE", "OAI", "base suite"} {
		if !strings.Contains(out, want) {
			t.Errorf("coverage output missing %q", want)
		}
	}
}

func TestTableIAttackUniverse(t *testing.T) {
	rows := TableIAttacks()
	if len(rows) != 23 {
		t.Fatalf("Table I rows = %d, want 23 (9 new + 14 previous)", len(rows))
	}
	newCount := 0
	for _, r := range rows {
		if r.New {
			newCount++
		}
	}
	if newCount != 9 {
		t.Errorf("new attacks = %d, want 9 (P1-P3, I1-I6)", newCount)
	}
}

func TestRenderDeviationsSurfacesQuirks(t *testing.T) {
	out, err := RenderDeviations()
	if err != nil {
		t.Fatalf("RenderDeviations: %v", err)
	}
	// Each implementation issue leaves a recognisable extra transition.
	for _, want := range []string{
		"UE/srsLTE",
		"UE/OAI",
		"sqn_in_range=0 / authentication_response",          // I3
		"guti_reallocation_command & plain_header=1",        // I2
		"identity_request & id_type=1 & plain_header=1",     // I5
		"count_fresh=0 & mac_valid=1 & plain_header=0 / se", // I1/I6 (SMC replay answered)
	} {
		if !strings.Contains(out, want) {
			t.Errorf("deviation report missing %q:\n%s", want, out)
		}
	}
}
