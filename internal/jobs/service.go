package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"prochecker/internal/obs"
	"prochecker/internal/resilience"
)

// State is a job's lifecycle position.
type State string

// The job states. Done, Failed and Cancelled are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is a point-in-time snapshot of one submitted job, JSON-shaped for
// the HTTP API. Result is populated once the job is done; Class and
// ExitCode map the terminal outcome onto the resilience taxonomy.
type Job struct {
	ID          string     `json:"id"`
	Key         string     `json:"key"`
	Spec        Spec       `json:"spec"`
	State       State      `json:"state"`
	CacheHit    bool       `json:"cache_hit,omitempty"`
	Error       string     `json:"error,omitempty"`
	Class       string     `json:"class,omitempty"`
	ExitCode    int        `json:"exit_code"`
	Result      *Result    `json:"result,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	QueueMS     float64    `json:"queue_ms"`
	RunMS       float64    `json:"run_ms"`
}

// Terminal reports whether the job has reached a final state.
func (j Job) Terminal() bool { return j.State.Terminal() }

// Runner executes one normalized spec end to end. The root prochecker
// package provides the production runner on top of AnalyzeContext.
type Runner func(ctx context.Context, spec Spec) (*Result, error)

// Config assembles a Service.
type Config struct {
	// Runner executes specs; required.
	Runner Runner
	// Normalize canonicalises a spec before hashing and validates it;
	// optional (identity when nil).
	Normalize func(Spec) (Spec, error)
	// Store dedupes completed work; optional (no caching when nil).
	Store *Store
	// Queue bounds the FIFO of waiting jobs; submissions past the bound
	// are rejected with ErrQueueFull. Defaults to DefaultQueueCap.
	Queue int
	// Workers sizes the pool executing jobs concurrently. Defaults to
	// GOMAXPROCS.
	Workers int
	// Timeout bounds each job's execution (0 = none); an expired job
	// ends cancelled.
	Timeout time.Duration
	// BaseContext is the parent of every job's context — the place to
	// install a process-wide obs observer. Defaults to
	// context.Background().
	BaseContext context.Context
	// Metrics receives queue/cache/terminal-state instrumentation;
	// optional (nil-safe).
	Metrics *obs.Registry
}

// DefaultQueueCap bounds the queue when Config.Queue <= 0.
const DefaultQueueCap = 64

// Submission failure modes.
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("jobs: service draining")
	// ErrUnknownJob marks lookups/cancels of an ID never issued.
	ErrUnknownJob = errors.New("jobs: unknown job")
)

// task is the service-internal mutable job record; every field after
// construction is guarded by Service.mu.
type task struct {
	id        string
	key       string
	spec      Spec
	state     State
	cacheHit  bool
	err       error
	result    *Result
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc
}

// Service owns the queue, the worker pool and the job table.
type Service struct {
	cfg   Config
	base  context.Context
	queue chan *task
	wg    sync.WaitGroup

	mu       sync.Mutex
	seq      int
	tasks    map[string]*task
	order    []string          // submission order, for List
	inflight map[string]string // key -> id of the queued/running job
	draining bool
}

// New builds and starts a Service; Close or Drain it when done.
func New(cfg Config) (*Service, error) {
	if cfg.Runner == nil {
		return nil, errors.New("jobs: Config.Runner is required")
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueueCap
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BaseContext == nil {
		cfg.BaseContext = context.Background()
	}
	s := &Service{
		cfg:      cfg,
		base:     cfg.BaseContext,
		queue:    make(chan *task, cfg.Queue),
		tasks:    make(map[string]*task),
		inflight: make(map[string]string),
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Submit normalizes and enqueues one spec. Dedup happens in two layers:
// a spec whose key matches a queued or running job coalesces onto that
// job (no new work), and a spec whose key is in the result store
// completes immediately as a cache hit. Submissions are rejected with
// ErrQueueFull past the queue bound and ErrDraining during shutdown.
func (s *Service) Submit(spec Spec) (Job, error) {
	if s.cfg.Normalize != nil {
		var err error
		if spec, err = s.cfg.Normalize(spec); err != nil {
			return Job{}, err
		}
	}
	key := spec.Key()
	reg := s.cfg.Metrics

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Job{}, ErrDraining
	}
	if id, ok := s.inflight[key]; ok {
		return s.snapshotLocked(s.tasks[id]), nil
	}

	t := &task{key: key, spec: spec, submitted: time.Now()}
	if _, res, ok := s.cfg.Store.Get(key); ok {
		reg.Counter("jobs.cache_hits").Inc()
		t.state = StateDone
		t.cacheHit = true
		t.result = res
		t.finished = t.submitted
		s.registerLocked(t)
		reg.Counter("jobs.submitted").Inc()
		s.terminalMetricsLocked(t)
		return s.snapshotLocked(t), nil
	}
	reg.Counter("jobs.cache_misses").Inc()

	t.state = StateQueued
	select {
	case s.queue <- t:
	default:
		return Job{}, ErrQueueFull
	}
	s.registerLocked(t)
	s.inflight[key] = t.id
	reg.Counter("jobs.submitted").Inc()
	reg.Gauge("jobs.queue_depth").Add(1)
	return s.snapshotLocked(t), nil
}

// registerLocked issues the task its ID and indexes it.
func (s *Service) registerLocked(t *task) {
	s.seq++
	t.id = fmt.Sprintf("j-%04d", s.seq)
	s.tasks[t.id] = t
	s.order = append(s.order, t.id)
}

// Get returns a snapshot of one job.
func (s *Service) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok {
		return Job{}, false
	}
	return s.snapshotLocked(t), true
}

// List returns snapshots of every job in submission order.
func (s *Service) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.snapshotLocked(s.tasks[id]))
	}
	return out
}

// Cancel stops a job: a queued job goes straight to cancelled (the
// worker skips it when it surfaces), a running job has its context
// cancelled and ends cancelled when the runner returns. Cancelling a
// terminal job is a no-op returning its final snapshot.
func (s *Service) Cancel(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok {
		return Job{}, ErrUnknownJob
	}
	switch t.state {
	case StateQueued:
		s.cancelQueuedLocked(t)
	case StateRunning:
		if t.cancel != nil {
			t.cancel()
		}
	}
	return s.snapshotLocked(t), nil
}

// cancelQueuedLocked finalises a job that never ran.
func (s *Service) cancelQueuedLocked(t *task) {
	t.state = StateCancelled
	t.err = fmt.Errorf("jobs: %s cancelled while queued: %w", t.id, resilience.ErrCancelled)
	t.finished = time.Now()
	delete(s.inflight, t.key)
	s.cfg.Metrics.Gauge("jobs.queue_depth").Add(-1)
	s.terminalMetricsLocked(t)
}

// Drain begins graceful shutdown: new submissions are rejected, every
// still-queued job is cancelled, and the call blocks until the running
// jobs finish (or ctx expires, in which case the workers keep finishing
// in the background). It returns how many queued jobs were cancelled.
// Drain is idempotent; concurrent calls all wait.
func (s *Service) Drain(ctx context.Context) (int, error) {
	cancelled := 0
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, id := range s.order {
			if t := s.tasks[id]; t.state == StateQueued {
				s.cancelQueuedLocked(t)
				cancelled++
			}
		}
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return cancelled, nil
	case <-ctx.Done():
		return cancelled, fmt.Errorf("jobs: drain interrupted: %w", resilience.ErrCancelled)
	}
}

// Close shuts down hard: running jobs are cancelled, then the service
// drains.
func (s *Service) Close() {
	s.mu.Lock()
	for _, t := range s.tasks {
		if t.state == StateRunning && t.cancel != nil {
			t.cancel()
		}
	}
	s.mu.Unlock()
	s.Drain(context.Background()) //nolint:errcheck // background ctx never expires
}

// worker executes queued tasks until the queue closes on drain.
func (s *Service) worker() {
	defer s.wg.Done()
	reg := s.cfg.Metrics
	for t := range s.queue {
		s.mu.Lock()
		if t.state != StateQueued { // cancelled while waiting
			s.mu.Unlock()
			continue
		}
		t.state = StateRunning
		t.started = time.Now()
		var ctx context.Context
		var cancel context.CancelFunc
		if s.cfg.Timeout > 0 {
			ctx, cancel = context.WithTimeout(s.base, s.cfg.Timeout)
		} else {
			ctx, cancel = context.WithCancel(s.base)
		}
		t.cancel = cancel
		spec := t.spec
		s.mu.Unlock()

		reg.Gauge("jobs.queue_depth").Add(-1)
		reg.Histogram("jobs.queue_latency_ms", nil).Observe(obs.DurMS(t.started.Sub(t.submitted)))
		reg.Gauge("jobs.running").Add(1)

		ctx, span := obs.Start(ctx, "job.run",
			obs.A("job", t.id), obs.A("impl", spec.Impl), obs.A("faults", spec.Faults))
		res, err := s.cfg.Runner(ctx, spec)
		span.EndErr(err)
		cancel()
		reg.Gauge("jobs.running").Add(-1)

		s.mu.Lock()
		t.finished = time.Now()
		delete(s.inflight, t.key)
		switch {
		case err == nil:
			t.state = StateDone
			res.Key = t.key
			t.result = res
			if _, perr := s.cfg.Store.Put(res); perr != nil {
				// The verdicts are still good; losing the cache entry
				// only costs a future recomputation.
				span.SetAttr("store_error", perr.Error())
			}
			reg.Gauge("jobs.store_entries").Set(int64(s.cfg.Store.Len()))
			reg.Gauge("jobs.store_evictions").Set(s.cfg.Store.Evictions())
		case resilience.Cancelled(err):
			t.state = StateCancelled
			t.err = err
		default:
			t.state = StateFailed
			t.err = err
		}
		s.terminalMetricsLocked(t)
		s.mu.Unlock()
	}
}

// terminalMetricsLocked records a job reaching a final state.
func (s *Service) terminalMetricsLocked(t *task) {
	reg := s.cfg.Metrics
	reg.Counter("jobs.completed").Inc()
	reg.Counter("jobs.terminal." + terminalClass(t.state, t.err)).Inc()
}

// terminalClass maps a terminal job onto the resilience vocabulary.
func terminalClass(state State, err error) string {
	switch state {
	case StateDone:
		return resilience.KindNone.String()
	case StateCancelled:
		return resilience.KindCancelled.String()
	default:
		return resilience.Classify(err).String()
	}
}

// snapshotLocked freezes a task into its API shape.
func (s *Service) snapshotLocked(t *task) Job {
	j := Job{
		ID:          t.id,
		Key:         t.key,
		Spec:        t.spec,
		State:       t.state,
		CacheHit:    t.cacheHit,
		Result:      t.result,
		SubmittedAt: t.submitted,
	}
	if t.err != nil {
		j.Error = t.err.Error()
	}
	if !t.started.IsZero() {
		started := t.started
		j.StartedAt = &started
		j.QueueMS = obs.DurMS(t.started.Sub(t.submitted))
	}
	if !t.finished.IsZero() {
		finished := t.finished
		j.FinishedAt = &finished
		if !t.started.IsZero() {
			j.RunMS = obs.DurMS(t.finished.Sub(t.started))
		}
	}
	if t.state.Terminal() {
		j.Class = terminalClass(t.state, t.err)
		if kind, ok := resilience.ParseKind(j.Class); ok {
			j.ExitCode = kind.ExitCode()
		} else {
			j.ExitCode = resilience.ExitInternal
		}
	}
	return j
}

// WorstExitCode folds a set of terminal jobs onto the single process
// exit code the resilience taxonomy assigns their most severe class
// (clean jobs contribute ExitOK).
func WorstExitCode(list []Job) int {
	worst := resilience.KindNone
	for _, j := range list {
		if k, ok := resilience.ParseKind(j.Class); ok && k > worst {
			worst = k
		}
	}
	return worst.ExitCode()
}

// SortProperties canonicalises a property selection in place: sorted,
// deduplicated. Shared by normalizers.
func SortProperties(ids []string) []string {
	if len(ids) == 0 {
		return nil
	}
	sort.Strings(ids)
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
