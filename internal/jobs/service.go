package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"prochecker/internal/obs"
	"prochecker/internal/resilience"
)

// State is a job's lifecycle position.
type State string

// The job states. Done, Failed, Cancelled and Quarantined are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	// StateQuarantined marks a poison job: its retry policy spent every
	// attempt on a failure class that is normally transient, so instead
	// of retrying forever it is parked terminally with the
	// retry-exhausted class.
	StateQuarantined State = "quarantined"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateQuarantined
}

// Job is a point-in-time snapshot of one submitted job, JSON-shaped for
// the HTTP API. Result is populated once the job is done; Class and
// ExitCode map the terminal outcome onto the resilience taxonomy.
// Attempts counts execution attempts (retries make it exceed 1), and
// Recovered marks a job requeued from the WAL after a crash.
type Job struct {
	ID        string  `json:"id"`
	Key       string  `json:"key"`
	Spec      Spec    `json:"spec"`
	State     State   `json:"state"`
	CacheHit  bool    `json:"cache_hit,omitempty"`
	Attempts  int     `json:"attempts,omitempty"`
	Recovered bool    `json:"recovered,omitempty"`
	Error     string  `json:"error,omitempty"`
	Class     string  `json:"class,omitempty"`
	ExitCode  int     `json:"exit_code"`
	Result    *Result `json:"result,omitempty"`
	// Worker names the fleet worker the job last ran on ("" for jobs
	// executed by the coordinator's local pool).
	Worker      string     `json:"worker,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	QueueMS     float64    `json:"queue_ms"`
	RunMS       float64    `json:"run_ms"`
}

// Terminal reports whether the job has reached a final state.
func (j Job) Terminal() bool { return j.State.Terminal() }

// Runner executes one normalized spec end to end. The root prochecker
// package provides the production runner on top of AnalyzeContext.
type Runner func(ctx context.Context, spec Spec) (*Result, error)

// RetryPolicy bounds how a failed job is retried. Retry decisions are
// taxonomy-driven: only failure classes resilience marks Retryable
// (fault-injected, case-panic) get another attempt; deterministic
// failures (cancelled, budget, model-lint, internal) fail fast on the
// first attempt. A retryable job that spends every attempt is
// quarantined with the retry-exhausted class.
type RetryPolicy struct {
	// MaxAttempts is the total attempts per job; <= 1 disables retries.
	MaxAttempts int
	// Backoff is the base of the exponential backoff before attempt
	// n+1: Backoff << (n-1), jittered. Defaults to 100ms when retries
	// are enabled.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. Defaults to 5s.
	MaxBackoff time.Duration
	// Seed drives the jitter PRNG, so a retry schedule is reproducible
	// per seed.
	Seed int64
}

// withDefaults fills the zero fields of an enabled policy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts > 1 {
		if p.Backoff <= 0 {
			p.Backoff = 100 * time.Millisecond
		}
		if p.MaxBackoff <= 0 {
			p.MaxBackoff = 5 * time.Second
		}
	}
	return p
}

// delay computes the jittered backoff before the attempt following
// attempt n (n >= 1), using the service's seeded PRNG.
func (p RetryPolicy) delay(n int, rng *rand.Rand) time.Duration {
	d := p.Backoff << (n - 1)
	if d <= 0 || d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	// Jitter in [0.5, 1.5): desynchronises retry herds while staying
	// deterministic per seed.
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

// Config assembles a Service.
type Config struct {
	// Runner executes specs; required.
	Runner Runner
	// Normalize canonicalises a spec before hashing and validates it;
	// optional (identity when nil).
	Normalize func(Spec) (Spec, error)
	// Store dedupes completed work; optional (no caching when nil).
	Store *Store
	// WALDir enables the write-ahead log: every job lifecycle
	// transition is journalled there, and New replays it so a crashed
	// or restarted service resumes exactly where it left off — finished
	// results are adopted from the Store, interrupted jobs are requeued
	// in original submission order. Empty disables durability.
	WALDir string
	// Retry is the per-job retry policy (zero value = single attempt).
	Retry RetryPolicy
	// Queue bounds the number of waiting jobs; submissions past the
	// bound are rejected with ErrQueueFull. Defaults to
	// DefaultQueueCap. Jobs requeued from the WAL were admitted before
	// the crash and may transiently exceed the bound.
	Queue int
	// Workers sizes the pool executing jobs concurrently. Defaults to
	// GOMAXPROCS.
	Workers int
	// Timeout bounds each execution attempt (0 = none); an expired
	// attempt ends the job cancelled (deadlines are deterministic, so
	// they are not retried).
	Timeout time.Duration
	// BaseContext is the parent of every job's context — the place to
	// install a process-wide obs observer. Defaults to
	// context.Background().
	BaseContext context.Context
	// Metrics receives queue/cache/wal/retry instrumentation; optional
	// (nil-safe).
	Metrics *obs.Registry
	// Events receives job lifecycle transitions (and, through the scope
	// each worker installs on its job context, every span the runner
	// produces); optional. Publishing never blocks, so a bus costs the
	// pipeline nothing beyond the ring append.
	Events *obs.Bus
	// FlightDir enables the per-job flight recorder: each job's event
	// stream is written to <FlightDir>/<job-id>.jsonl with a CRC footer,
	// replayable offline for post-mortem debugging. Requires Events.
	FlightDir string
	// LeaseTTL bounds how long a distributed worker may hold a job
	// without heartbeating before the lease expires and the job
	// requeues. Defaults to DefaultLeaseTTL.
	LeaseTTL time.Duration
	// NoLocalWorkers runs the service as a pure coordinator: no local
	// worker pool is started, so every job is executed by remote fleet
	// workers pulling through the lease API.
	NoLocalWorkers bool
}

// DefaultQueueCap bounds the queue when Config.Queue <= 0.
const DefaultQueueCap = 64

// Submission failure modes.
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("jobs: service draining")
	// ErrUnknownJob marks lookups/cancels of an ID never issued.
	ErrUnknownJob = errors.New("jobs: unknown job")
)

// task is the service-internal mutable job record; every field after
// construction is guarded by Service.mu.
type task struct {
	id        string
	key       string
	spec      Spec
	state     State
	cacheHit  bool
	attempts  int // execution attempts started
	recovered bool
	err       error
	result    *Result
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc

	// Distributed execution: set while the task is leased to a remote
	// worker (leaseID empties on release; worker persists for
	// attribution).
	worker      string
	leaseID     string
	leaseExpiry time.Time
}

// RecoveryStats summarises what New reconstructed from the WAL.
type RecoveryStats struct {
	// Replayed counts intact WAL records read.
	Replayed int `json:"records_replayed"`
	// Adopted counts finished jobs whose results were re-served from
	// the content-addressed store without recomputation.
	Adopted int `json:"results_adopted"`
	// Requeued counts jobs that were queued or running at crash time
	// (plus finished jobs whose stored result had been evicted) and
	// were put back on the queue in original submission order.
	Requeued int `json:"jobs_requeued"`
	// Terminal counts failed/cancelled/quarantined jobs restored
	// as-is.
	Terminal int `json:"terminal_restored"`
	// LeasesRestored counts unexpired worker leases re-adopted from the
	// WAL: their jobs stay running under the original worker instead of
	// requeueing, so a coordinator restart does not double-schedule work
	// a live worker still holds.
	LeasesRestored int `json:"leases_restored"`
}

// Service owns the queue, the worker pool, the job table and (when
// configured) the write-ahead log making all of it crash-safe.
type Service struct {
	cfg    Config
	base   context.Context
	wal    *WAL
	bus    *obs.Bus
	flight *FlightRecorder
	wg     sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond // signalled when pending grows or drain starts
	rng      *rand.Rand // retry jitter; guarded by mu
	seq      int
	tasks    map[string]*task
	order    []string          // submission order, for List
	inflight map[string]string // key -> id of the queued/running job
	pending  []*task           // FIFO of runnable tasks
	nqueued  int               // tasks in StateQueued (backpressure bound)
	metas    []Record          // opaque layer-above records, append order
	leases   map[string]*task  // active lease ID -> leased task
	leaseSeq int
	draining bool
	recovery RecoveryStats

	sweepStop chan struct{} // closed by drain to stop the lease sweeper
	sweepDone chan struct{} // closed when the sweeper exits
	sweepOnce sync.Once

	checkpointOnce sync.Once
}

// New builds and starts a Service; Close or Drain it when done. With
// Config.WALDir set, New first replays the log: finished jobs adopt
// their results from the store, interrupted jobs are requeued in
// original submission order, and the log is compacted down to the
// condensed live state before any new work is accepted.
func New(cfg Config) (*Service, error) {
	if cfg.Runner == nil {
		return nil, errors.New("jobs: Config.Runner is required")
	}
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueueCap
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BaseContext == nil {
		cfg.BaseContext = context.Background()
	}
	cfg.Retry = cfg.Retry.withDefaults()
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	s := &Service{
		cfg:       cfg,
		base:      cfg.BaseContext,
		bus:       cfg.Events,
		rng:       rand.New(rand.NewSource(cfg.Retry.Seed)),
		tasks:     make(map[string]*task),
		inflight:  make(map[string]string),
		leases:    make(map[string]*task),
		sweepStop: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)

	// Pre-register the always-present instruments so a scrape of a
	// freshly booted, still-idle service already exposes the core
	// series (at zero) instead of an empty payload.
	if reg := cfg.Metrics; reg != nil {
		reg.Counter("jobs.submitted")
		reg.Counter("jobs.completed")
		reg.Gauge("jobs.queue_depth")
		reg.Gauge("jobs.running")
		reg.Histogram("jobs.queue_latency_ms", nil)
		reg.Counter("dist.leases_granted")
		reg.Counter("dist.leases_expired")
		reg.Counter("dist.stale_results")
	}

	if cfg.WALDir != "" {
		_, span := obs.Start(cfg.BaseContext, "wal.replay", obs.A("dir", cfg.WALDir))
		wal, recs, err := OpenWAL(cfg.WALDir, cfg.Metrics)
		if err != nil {
			span.EndErr(err)
			return nil, err
		}
		s.wal = wal
		s.replay(recs)
		span.SetAttr("requeued", strconv.Itoa(s.recovery.Requeued))
		span.SetAttr("adopted", strconv.Itoa(s.recovery.Adopted))
		// Startup compaction: the replayed history condenses to one
		// record triple per job.
		s.mu.Lock()
		live := s.liveRecordsLocked()
		s.mu.Unlock()
		if err := s.wal.Compact(live); err != nil {
			span.EndErr(err)
			s.wal.Close() //nolint:errcheck // open failed midway
			return nil, err
		}
		span.End()
	}

	if cfg.FlightDir != "" && cfg.Events != nil {
		fr, err := NewFlightRecorder(cfg.FlightDir, cfg.Events, cfg.Metrics)
		if err != nil {
			s.wal.Close() //nolint:errcheck // startup failed midway
			return nil, err
		}
		s.flight = fr
	}

	if !cfg.NoLocalWorkers {
		for w := 0; w < cfg.Workers; w++ {
			s.wg.Add(1)
			go s.worker()
		}
	}
	go s.sweeper()
	return s, nil
}

// replay reconstructs the job table from WAL records. Called from New
// before any worker starts, so no locking is needed — but the lock-free
// helpers it shares with the running service expect mu conventions, so
// it takes the lock anyway for uniformity.
func (s *Service) replay(recs []Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg := s.cfg.Metrics
	s.recovery.Replayed = len(recs)
	// Lease bookkeeping across the record stream: grants/renewals upsert,
	// releases delete, so what survives the loop is the set of leases
	// that were live at crash time (expiry decides re-adoption below).
	liveLeases := make(map[string]Record)
	for _, rec := range recs {
		switch rec.Type {
		case RecSubmitted:
			if rec.Spec == nil || rec.ID == "" {
				continue
			}
			t := &task{
				id:        rec.ID,
				key:       rec.Key,
				spec:      *rec.Spec,
				state:     StateQueued,
				submitted: rec.At,
			}
			s.tasks[t.id] = t
			s.order = append(s.order, t.id)
			if n := idSeq(t.id); n > s.seq {
				s.seq = n
			}
		case RecStarted:
			if t, ok := s.tasks[rec.ID]; ok {
				t.state = StateRunning
				t.attempts = rec.Attempt
				if t.started.IsZero() {
					t.started = rec.At
				}
			}
		case RecTerminal:
			t, ok := s.tasks[rec.ID]
			if !ok {
				continue
			}
			t.state = rec.State
			t.cacheHit = rec.CacheHit
			t.finished = rec.At
			if t.state != StateDone {
				t.err = reconstructError(rec.Class, rec.Error)
			}
		case RecMeta:
			// Replace-by-ID: layers above re-journal mutable state (tenant
			// quota balances) under a stable ID, and only the latest
			// payload is live.
			replaced := false
			for i := range s.metas {
				if rec.ID != "" && s.metas[i].ID == rec.ID {
					s.metas[i] = rec
					replaced = true
					break
				}
			}
			if !replaced {
				s.metas = append(s.metas, rec)
			}
		case RecLease:
			switch rec.Action {
			case LeaseGrant:
				liveLeases[rec.Lease] = rec
			case LeaseRenew:
				if g, ok := liveLeases[rec.Lease]; ok {
					g.Expiry = rec.Expiry
					liveLeases[rec.Lease] = g
				}
			case LeaseRelease:
				delete(liveLeases, rec.Lease)
			}
		}
	}

	// Index the surviving leases by job for the settle loop; expired
	// grants fall through to the ordinary requeue path.
	now := time.Now()
	leaseByJob := make(map[string]Record, len(liveLeases))
	for _, g := range liveLeases {
		if g.Expiry.After(now) {
			leaseByJob[g.ID] = g
		}
	}

	// Settle every job: adopt finished results from the store, requeue
	// whatever a crash interrupted, keep other terminal outcomes.
	for _, id := range s.order {
		t := s.tasks[id]
		switch {
		case t.state == StateDone:
			if _, res, ok := s.cfg.Store.Get(t.key); ok {
				t.result = res
				s.recovery.Adopted++
				reg.Counter("jobs.recovered_adopted").Inc()
				continue
			}
			// The store entry was evicted or quarantined: the result is
			// gone, so the job recomputes (results are deterministic per
			// spec, so the rerun is byte-identical).
			t.state, t.finished, t.cacheHit, t.attempts = StateQueued, time.Time{}, false, 0
			s.requeueReplayedLocked(t)
		case !t.state.Terminal():
			if g, ok := leaseByJob[id]; ok {
				// A live worker still holds this job under an unexpired
				// lease: re-adopt the assignment instead of requeueing, so
				// the restarted coordinator accepts the worker's heartbeats
				// and eventual result. The sweeper reclaims it as usual if
				// the worker is in fact gone.
				t.state = StateRunning
				t.recovered = true
				t.worker = g.Worker
				t.leaseID = g.Lease
				t.leaseExpiry = g.Expiry
				s.leases[g.Lease] = t
				s.inflight[t.key] = t.id
				if n := idSeq(g.Lease); n > s.leaseSeq {
					s.leaseSeq = n
				}
				s.recovery.LeasesRestored++
				reg.Counter("jobs.recovered_leases").Inc()
				reg.Gauge(obs.LabeledStr("jobs.leases_active", "worker", t.worker)).Add(1)
				reg.Gauge("jobs.running").Add(1)
				continue
			}
			// Queued or mid-attempt at crash time. The interrupted
			// attempt is retried without counting against the policy.
			if t.attempts > 0 {
				t.attempts--
			}
			t.state = StateQueued
			s.requeueReplayedLocked(t)
		default:
			s.recovery.Terminal++
		}
	}
}

// requeueReplayedLocked puts one replayed task back on the queue.
func (s *Service) requeueReplayedLocked(t *task) {
	t.recovered = true
	s.inflight[t.key] = t.id
	s.pending = append(s.pending, t)
	s.nqueued++
	s.recovery.Requeued++
	reg := s.cfg.Metrics
	reg.Counter("jobs.recovered_requeued").Inc()
	reg.Gauge("jobs.queue_depth").Add(1)
}

// ClassifiedError rebuilds a classifiable error from a serialized
// failure class and message — the bridge for worker-reported failures
// crossing the lease HTTP boundary, sharing the WAL replay machinery so
// errors.Is and exit codes see the taxonomy sentinel through Unwrap.
func ClassifiedError(class, msg string) error { return reconstructError(class, msg) }

// reconstructError rebuilds a classifiable error from a serialized
// failure class: the message survives byte-identical while errors.Is
// and exit codes see the taxonomy sentinel through Unwrap.
func reconstructError(class, msg string) error {
	kind, _ := resilience.ParseKind(class)
	if msg == "" {
		msg = "failure replayed from wal"
	}
	sentinel := kind.Sentinel()
	if sentinel == nil {
		return errors.New(msg)
	}
	return &replayedError{msg: msg, sentinel: sentinel}
}

// replayedError carries a WAL-replayed failure message verbatim while
// unwrapping to its taxonomy sentinel.
type replayedError struct {
	msg      string
	sentinel error
}

func (e *replayedError) Error() string { return e.msg }
func (e *replayedError) Unwrap() error { return e.sentinel }

// idSeq parses the numeric suffix of a "j-0042" style ID.
func idSeq(id string) int {
	i := strings.LastIndexByte(id, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil {
		return 0
	}
	return n
}

// Recovery reports what New reconstructed from the WAL (zero value when
// the service runs without one).
func (s *Service) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// LogMeta durably journals an opaque record for the layer above the job
// service (the HTTP server persists campaign membership through it) and
// keeps it across compactions. Replayed and logged metas come back from
// Metas in append order.
func (s *Service) LogMeta(id string, payload json.RawMessage) error {
	rec := Record{Type: RecMeta, ID: id, Meta: payload, At: time.Now().UTC()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.wal.Append(rec); err != nil {
		return err
	}
	s.metas = append(s.metas, rec)
	return nil
}

// LogMetaReplace journals an opaque record like LogMeta, but replaces
// any earlier meta with the same ID instead of appending alongside it —
// the shape for mutable layer-above state (tenant quota balances) where
// only the latest payload is live. The WAL itself stays append-only;
// compaction and replay both collapse to the last record per ID.
func (s *Service) LogMetaReplace(id string, payload json.RawMessage) error {
	rec := Record{Type: RecMeta, ID: id, Meta: payload, At: time.Now().UTC()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.wal.Append(rec); err != nil {
		return err
	}
	for i := range s.metas {
		if s.metas[i].ID == id {
			s.metas[i] = rec
			return nil
		}
	}
	s.metas = append(s.metas, rec)
	return nil
}

// Metas returns the replayed and logged meta records in append order.
func (s *Service) Metas() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.metas...)
}

// Submit normalizes and enqueues one spec. Dedup happens in two layers:
// a spec whose key matches a queued or running job coalesces onto that
// job (no new work), and a spec whose key is in the result store
// completes immediately as a cache hit. Submissions are rejected with
// ErrQueueFull past the queue bound and ErrDraining during shutdown.
// With a WAL, the submission is journalled before it is acknowledged.
func (s *Service) Submit(spec Spec) (Job, error) {
	if s.cfg.Normalize != nil {
		var err error
		if spec, err = s.cfg.Normalize(spec); err != nil {
			return Job{}, err
		}
	}
	key := spec.Key()
	reg := s.cfg.Metrics

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Job{}, ErrDraining
	}
	if id, ok := s.inflight[key]; ok {
		return s.snapshotLocked(s.tasks[id]), nil
	}

	t := &task{key: key, spec: spec, submitted: time.Now()}
	if _, res, ok := s.cfg.Store.Get(key); ok {
		reg.Counter("jobs.cache_hits").Inc()
		t.state = StateDone
		t.cacheHit = true
		t.result = res
		t.finished = t.submitted
		s.registerLocked(t)
		if err := s.walSubmitLocked(t); err != nil {
			s.unregisterLocked(t)
			return Job{}, err
		}
		reg.Counter("jobs.submitted").Inc()
		s.terminalMetricsLocked(t)
		return s.snapshotLocked(t), nil
	}
	reg.Counter("jobs.cache_misses").Inc()

	if s.nqueued >= s.cfg.Queue {
		return Job{}, ErrQueueFull
	}
	t.state = StateQueued
	s.registerLocked(t)
	if err := s.walSubmitLocked(t); err != nil {
		s.unregisterLocked(t)
		return Job{}, err
	}
	s.inflight[key] = t.id
	s.pending = append(s.pending, t)
	s.nqueued++
	s.cond.Signal()
	reg.Counter("jobs.submitted").Inc()
	reg.Gauge("jobs.queue_depth").Add(1)
	s.publishJobLocked(t, string(StateQueued))
	s.publishQueueDepthLocked()
	return s.snapshotLocked(t), nil
}

// walSubmitLocked journals the acknowledgement of t — the submitted
// record, plus the terminal record immediately when the job completed
// as a cache hit.
func (s *Service) walSubmitLocked(t *task) error {
	if s.wal == nil {
		return nil
	}
	spec := t.spec
	if err := s.wal.Append(Record{
		Type: RecSubmitted, ID: t.id, Key: t.key, Spec: &spec, At: t.submitted.UTC(),
	}); err != nil {
		return fmt.Errorf("jobs: journalling submission: %w", err)
	}
	if t.state.Terminal() {
		return s.walTerminalLocked(t)
	}
	return nil
}

// walTerminalLocked journals t reaching a final state.
func (s *Service) walTerminalLocked(t *task) error {
	if s.wal == nil {
		return nil
	}
	rec := Record{
		Type: RecTerminal, ID: t.id, State: t.state,
		Class: terminalClass(t.state, t.err), CacheHit: t.cacheHit, At: t.finished.UTC(),
	}
	if t.err != nil {
		rec.Error = t.err.Error()
	}
	if err := s.wal.Append(rec); err != nil {
		return fmt.Errorf("jobs: journalling terminal state: %w", err)
	}
	return nil
}

// registerLocked issues the task its ID and indexes it.
func (s *Service) registerLocked(t *task) {
	s.seq++
	t.id = fmt.Sprintf("j-%04d", s.seq)
	s.tasks[t.id] = t
	s.order = append(s.order, t.id)
}

// unregisterLocked rolls a failed registration back (WAL append
// failure: the job was never acknowledged).
func (s *Service) unregisterLocked(t *task) {
	delete(s.tasks, t.id)
	if n := len(s.order); n > 0 && s.order[n-1] == t.id {
		s.order = s.order[:n-1]
	}
	s.seq--
}

// Get returns a snapshot of one job.
func (s *Service) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok {
		return Job{}, false
	}
	return s.snapshotLocked(t), true
}

// List returns snapshots of every job in submission order.
func (s *Service) List() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.snapshotLocked(s.tasks[id]))
	}
	return out
}

// Cancel stops a job: a queued job (including one waiting out a retry
// backoff) goes straight to cancelled, a running job has its context
// cancelled and ends cancelled when the runner returns. Cancelling a
// terminal job is a no-op returning its final snapshot.
func (s *Service) Cancel(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tasks[id]
	if !ok {
		return Job{}, ErrUnknownJob
	}
	switch t.state {
	case StateQueued:
		s.cancelQueuedLocked(t)
	case StateRunning:
		if t.cancel != nil {
			t.cancel()
		} else if t.leaseID != "" {
			// Running remotely: there is no local context to cancel, so
			// finalise now and let the worker's eventual upload be
			// discarded as stale.
			s.cancelLeasedLocked(t)
		}
	}
	return s.snapshotLocked(t), nil
}

// cancelQueuedLocked finalises a job that never ran (or was waiting out
// a retry backoff).
func (s *Service) cancelQueuedLocked(t *task) {
	t.state = StateCancelled
	t.err = fmt.Errorf("jobs: %s cancelled while queued: %w", t.id, resilience.ErrCancelled)
	t.finished = time.Now()
	delete(s.inflight, t.key)
	s.nqueued--
	s.cfg.Metrics.Gauge("jobs.queue_depth").Add(-1)
	s.walTerminalLocked(t) //nolint:errcheck // cancellation is already final
	s.terminalMetricsLocked(t)
}

// Drain begins graceful shutdown: new submissions are rejected, every
// still-queued job is cancelled, and the call blocks until the running
// jobs finish (or ctx expires, in which case the workers keep finishing
// in the background). When the drain completes it checkpoints the WAL —
// compacted, fsynced and closed — so a restart resumes exactly where
// the drain left off. It returns how many queued jobs were cancelled.
// Drain is idempotent; concurrent calls all wait.
func (s *Service) Drain(ctx context.Context) (int, error) {
	cancelled := 0
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, id := range s.order {
			if t := s.tasks[id]; t.state == StateQueued {
				s.cancelQueuedLocked(t)
				cancelled++
			}
		}
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		// Remote attempts drain too: their workers keep renewing and
		// settling leases during the drain, and a dead worker's lease is
		// reclaimed by the sweeper within one TTL (draining disables
		// retries, so reclamation is terminal and the wait is bounded).
		s.waitLeasesDrained()
		s.sweepOnce.Do(func() { close(s.sweepStop) })
		<-s.sweepDone
		close(done)
	}()
	select {
	case <-done:
		var cerr error
		s.checkpointOnce.Do(func() { cerr = s.checkpointAndCloseWAL() })
		// Every terminal event is on the bus by now; Close drains the
		// recorder's backlog so finished flights carry their footers.
		s.flight.Close()
		return cancelled, cerr
	case <-ctx.Done():
		return cancelled, fmt.Errorf("jobs: drain interrupted: %w", resilience.ErrCancelled)
	}
}

// Checkpoint compacts the WAL down to the condensed live state and
// fsyncs it. Safe to call at any time; Drain does it automatically on
// completion.
func (s *Service) Checkpoint() error {
	if s.wal == nil {
		return nil
	}
	s.mu.Lock()
	recs := s.liveRecordsLocked()
	s.mu.Unlock()
	return s.wal.Compact(recs)
}

// checkpointAndCloseWAL is the drain-complete barrier: compact, sync,
// close.
func (s *Service) checkpointAndCloseWAL() error {
	if s.wal == nil {
		return nil
	}
	if err := s.Checkpoint(); err != nil {
		s.wal.Close() //nolint:errcheck // compaction failure already reported
		return err
	}
	return s.wal.Close()
}

// liveRecordsLocked condenses the job table into the minimal record
// sequence that replays back to the same state: per job a submitted
// record, a started record when it ever ran, a terminal record when it
// finished — plus every meta record.
func (s *Service) liveRecordsLocked() []Record {
	recs := make([]Record, 0, 2*len(s.order)+len(s.metas))
	for _, id := range s.order {
		t := s.tasks[id]
		spec := t.spec
		recs = append(recs, Record{
			Type: RecSubmitted, ID: t.id, Key: t.key, Spec: &spec, At: t.submitted.UTC(),
		})
		if t.attempts > 0 {
			recs = append(recs, Record{
				Type: RecStarted, ID: t.id, Attempt: t.attempts, At: t.started.UTC(),
			})
		}
		if t.leaseID != "" {
			// An active worker assignment survives compaction as a single
			// grant at its current expiry.
			recs = append(recs, Record{
				Type: RecLease, ID: t.id, Lease: t.leaseID, Worker: t.worker,
				Action: LeaseGrant, Expiry: t.leaseExpiry.UTC(), At: t.started.UTC(),
			})
		}
		if t.state.Terminal() {
			rec := Record{
				Type: RecTerminal, ID: t.id, State: t.state,
				Class: terminalClass(t.state, t.err), CacheHit: t.cacheHit, At: t.finished.UTC(),
			}
			if t.err != nil {
				rec.Error = t.err.Error()
			}
			recs = append(recs, rec)
		}
	}
	recs = append(recs, s.metas...)
	return recs
}

// Close shuts down hard: running jobs are cancelled, then the service
// drains.
func (s *Service) Close() {
	s.mu.Lock()
	for _, t := range s.tasks {
		if t.state != StateRunning {
			continue
		}
		if t.cancel != nil {
			t.cancel()
		} else if t.leaseID != "" {
			s.cancelLeasedLocked(t)
		}
	}
	s.mu.Unlock()
	s.Drain(context.Background()) //nolint:errcheck // background ctx never expires
}

// worker executes queued tasks until drain empties the queue.
func (s *Service) worker() {
	defer s.wg.Done()
	reg := s.cfg.Metrics
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.draining {
			s.cond.Wait()
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return
		}
		t := s.pending[0]
		s.pending = s.pending[1:]
		if t.state != StateQueued { // cancelled while waiting
			s.mu.Unlock()
			continue
		}
		t.state = StateRunning
		t.attempts++
		firstAttempt := t.started.IsZero()
		if firstAttempt {
			t.started = time.Now()
		}
		var ctx context.Context
		var cancel context.CancelFunc
		if s.cfg.Timeout > 0 {
			ctx, cancel = context.WithTimeout(s.base, s.cfg.Timeout)
		} else {
			ctx, cancel = context.WithCancel(s.base)
		}
		t.cancel = cancel
		spec := t.spec
		attempt := t.attempts
		s.nqueued--
		if s.wal != nil {
			s.wal.Append(Record{ //nolint:errcheck // execution proceeds; replay reruns at worst
				Type: RecStarted, ID: t.id, Attempt: attempt, At: time.Now().UTC(),
			})
		}
		s.publishJobLocked(t, string(StateRunning))
		s.publishQueueDepthLocked()
		s.mu.Unlock()

		reg.Gauge("jobs.queue_depth").Add(-1)
		if firstAttempt {
			reg.Histogram("jobs.queue_latency_ms", nil).Observe(obs.DurMS(t.started.Sub(t.submitted)))
		}
		reg.Gauge("jobs.running").Add(1)

		// The job's ID becomes the scope of every span the runner starts,
		// so the process-wide event bus can be demultiplexed into per-job
		// streams (SSE endpoints, flight recorder).
		ctx = obs.WithScope(ctx, t.id)
		ctx, span := obs.Start(ctx, "job.run",
			obs.A("job", t.id), obs.A("impl", spec.Impl), obs.A("faults", spec.Faults),
			obs.A("attempt", strconv.Itoa(attempt)))
		res, err := s.cfg.Runner(ctx, spec)
		span.EndErr(err)
		cancel()
		reg.Gauge("jobs.running").Add(-1)

		s.mu.Lock()
		switch {
		case err == nil:
			t.state = StateDone
			t.finished = time.Now()
			res.Key = t.key
			t.result = res
			delete(s.inflight, t.key)
			if _, perr := s.cfg.Store.Put(res); perr != nil {
				// The verdicts are still good; losing the cache entry
				// only costs a future recomputation.
				reg.Counter("jobs.store_put_errors").Inc()
			}
			reg.Gauge("jobs.store_entries").Set(int64(s.cfg.Store.Len()))
			reg.Gauge("jobs.store_evictions").Set(s.cfg.Store.Evictions())
			reg.Gauge("jobs.store_quarantined").Set(s.cfg.Store.Quarantined())
			s.walTerminalLocked(t) //nolint:errcheck // result is stored; replay adopts it
			s.terminalMetricsLocked(t)
		case s.retryLocked(t, err):
			// Another attempt is scheduled; the job is back in
			// StateQueued waiting out its backoff.
		default:
			s.finalizeFailureLocked(t, err)
		}
		s.mu.Unlock()
	}
}

// retryLocked decides whether t gets another attempt after err and, if
// so, schedules it after the policy's jittered backoff. The decision is
// taxonomy-driven: only resilience-retryable classes qualify, and a
// draining service never retries.
func (s *Service) retryLocked(t *task, err error) bool {
	p := s.cfg.Retry
	if p.MaxAttempts <= 1 || s.draining {
		return false
	}
	if !resilience.Classify(err).Retryable() {
		return false
	}
	if t.attempts >= p.MaxAttempts {
		return false
	}
	delay := p.delay(t.attempts, s.rng)
	t.state = StateQueued
	t.err = nil
	s.nqueued++
	reg := s.cfg.Metrics
	reg.Counter("jobs.retries").Inc()
	reg.Gauge("jobs.queue_depth").Add(1)
	s.publishJobLocked(t, "retrying")
	time.AfterFunc(delay, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if t.state != StateQueued { // cancelled or drained meanwhile
			return
		}
		s.pending = append(s.pending, t)
		s.cond.Signal()
	})
	return true
}

// finalizeFailureLocked parks t terminally after a non-retried failure:
// cancelled, failed, or — when a retry policy spent every attempt on a
// retryable class — quarantined as a poison job with the
// retry-exhausted class.
func (s *Service) finalizeFailureLocked(t *task, err error) {
	t.finished = time.Now()
	delete(s.inflight, t.key)
	kind := resilience.Classify(err)
	switch {
	case kind == resilience.KindCancelled:
		t.state = StateCancelled
		t.err = err
	case kind.Retryable() && s.cfg.Retry.MaxAttempts > 1 && t.attempts >= s.cfg.Retry.MaxAttempts:
		t.state = StateQuarantined
		t.err = fmt.Errorf("jobs: %s quarantined after %d attempts (last: %v): %w",
			t.id, t.attempts, err, resilience.ErrRetryExhausted)
		s.cfg.Metrics.Counter("jobs.quarantined").Inc()
	default:
		t.state = StateFailed
		t.err = err
	}
	s.walTerminalLocked(t) //nolint:errcheck // outcome is final either way
	s.terminalMetricsLocked(t)
}

// terminalMetricsLocked records a job reaching a final state — the
// single point every terminal transition (cache hit, completion,
// cancellation, failure, quarantine) funnels through, so it also
// publishes the terminal lifecycle event streaming clients and the
// flight recorder key off.
func (s *Service) terminalMetricsLocked(t *task) {
	reg := s.cfg.Metrics
	reg.Counter("jobs.completed").Inc()
	reg.Counter("jobs.terminal." + terminalClass(t.state, t.err)).Inc()
	if t.spec.Impl != "" {
		reg.Counter(obs.LabeledStr("jobs.terminal_by_impl", "impl", t.spec.Impl)).Inc()
	}
	s.publishJobLocked(t, string(t.state))
}

// publishJobLocked emits one job lifecycle transition on the event
// bus. Publishing never blocks (slow subscribers drop), so calling
// under the service lock is safe.
func (s *Service) publishJobLocked(t *task, name string) {
	if s.bus == nil {
		return
	}
	ev := obs.BusEvent{Type: "job", Scope: t.id, Name: name}
	attrs := make(map[string]string, 4)
	if t.attempts > 0 {
		attrs["attempt"] = strconv.Itoa(t.attempts)
	}
	if t.cacheHit {
		attrs["cache_hit"] = "true"
	}
	if t.recovered {
		attrs["recovered"] = "true"
	}
	if t.state.Terminal() {
		attrs["class"] = terminalClass(t.state, t.err)
	}
	if t.worker != "" {
		attrs["worker"] = t.worker
	}
	if t.err != nil {
		ev.Err = t.err.Error()
	}
	if len(attrs) > 0 {
		ev.Attrs = attrs
	}
	s.bus.Publish(ev)
}

// publishQueueDepthLocked emits the queue depth as a metric delta
// event so live dashboards track backpressure without scraping.
func (s *Service) publishQueueDepthLocked() {
	if s.bus == nil {
		return
	}
	s.bus.Publish(obs.BusEvent{Type: "metric", Name: "jobs.queue_depth", Value: int64(s.nqueued)})
}

// terminalClass maps a terminal job onto the resilience vocabulary.
func terminalClass(state State, err error) string {
	switch state {
	case StateDone:
		return resilience.KindNone.String()
	case StateCancelled:
		return resilience.KindCancelled.String()
	default:
		return resilience.Classify(err).String()
	}
}

// snapshotLocked freezes a task into its API shape.
func (s *Service) snapshotLocked(t *task) Job {
	j := Job{
		ID:          t.id,
		Key:         t.key,
		Spec:        t.spec,
		State:       t.state,
		CacheHit:    t.cacheHit,
		Attempts:    t.attempts,
		Recovered:   t.recovered,
		Result:      t.result,
		Worker:      t.worker,
		SubmittedAt: t.submitted,
	}
	if t.err != nil {
		j.Error = t.err.Error()
	}
	if !t.started.IsZero() {
		started := t.started
		j.StartedAt = &started
		j.QueueMS = obs.DurMS(t.started.Sub(t.submitted))
	}
	if !t.finished.IsZero() {
		finished := t.finished
		j.FinishedAt = &finished
		if !t.started.IsZero() {
			j.RunMS = obs.DurMS(t.finished.Sub(t.started))
		}
	}
	if t.state.Terminal() {
		j.Class = terminalClass(t.state, t.err)
		if kind, ok := resilience.ParseKind(j.Class); ok {
			j.ExitCode = kind.ExitCode()
		} else {
			j.ExitCode = resilience.ExitInternal
		}
	}
	return j
}

// WorstExitCode folds a set of terminal jobs onto the single process
// exit code the resilience taxonomy assigns their most severe class
// (clean jobs contribute ExitOK).
func WorstExitCode(list []Job) int {
	worst := resilience.KindNone
	for _, j := range list {
		if k, ok := resilience.ParseKind(j.Class); ok && k > worst {
			worst = k
		}
	}
	return worst.ExitCode()
}

// SortProperties canonicalises a property selection in place: sorted,
// deduplicated. Shared by normalizers.
func SortProperties(ids []string) []string {
	if len(ids) == 0 {
		return nil
	}
	sort.Strings(ids)
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}
