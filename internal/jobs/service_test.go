package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"prochecker/internal/obs"
	"prochecker/internal/resilience"
)

// fakeRunner builds deterministic results and can be gated so tests
// control exactly when a job finishes.
type fakeRunner struct {
	mu      sync.Mutex
	ran     []string // impls in execution order
	gate    chan struct{}
	fail    error
	respect bool // return ctx.Err() when the context ends first
}

func (f *fakeRunner) run(ctx context.Context, spec Spec) (*Result, error) {
	if f.gate != nil {
		if f.respect {
			select {
			case <-f.gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		} else {
			<-f.gate
		}
	}
	if ctx.Err() != nil && f.respect {
		return nil, ctx.Err()
	}
	f.mu.Lock()
	f.ran = append(f.ran, spec.Impl)
	f.mu.Unlock()
	if f.fail != nil {
		return nil, f.fail
	}
	return &Result{
		SchemaVersion: ResultSchemaVersion,
		Key:           spec.Key(),
		Spec:          spec,
		Verdicts:      []Verdict{{ID: "S06", Class: "authentication", Verified: true, Detail: "verified over 42 states"}},
	}, nil
}

func (f *fakeRunner) order() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.ran...)
}

// waitTerminal polls the service until the job leaves its open states.
func waitTerminal(t *testing.T, s *Service, id string) Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if j.Terminal() {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Job{}
}

func TestSubmitRunsToDone(t *testing.T) {
	fr := &fakeRunner{}
	reg := obs.NewRegistry()
	s, err := New(Config{Runner: fr.run, Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	j, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued {
		t.Fatalf("state = %s, want queued", j.State)
	}
	done := waitTerminal(t, s, j.ID)
	if done.State != StateDone {
		t.Fatalf("state = %s (error %q), want done", done.State, done.Error)
	}
	if done.Result == nil || len(done.Result.Verdicts) != 1 {
		t.Fatalf("result = %+v, want one verdict", done.Result)
	}
	if done.ExitCode != resilience.ExitOK {
		t.Fatalf("exit code = %d, want %d", done.ExitCode, resilience.ExitOK)
	}
	if done.Class != "none" {
		t.Fatalf("class = %q, want none", done.Class)
	}
	if got := reg.Counter("jobs.submitted").Value(); got != 1 {
		t.Fatalf("jobs.submitted = %d, want 1", got)
	}
	if got := reg.Counter("jobs.terminal.none").Value(); got != 1 {
		t.Fatalf("jobs.terminal.none = %d, want 1", got)
	}
}

func TestFIFOOrder(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, err := New(Config{Runner: fr.run, Workers: 1, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		j, err := s.Submit(Spec{Impl: fmt.Sprintf("impl-%d", i), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	close(fr.gate)
	for _, id := range ids {
		waitTerminal(t, s, id)
	}
	want := []string{"impl-0", "impl-1", "impl-2", "impl-3"}
	got := fr.order()
	if len(got) != len(want) {
		t.Fatalf("ran %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want FIFO %v", got, want)
		}
	}
}

func TestBackpressureQueueFull(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, err := New(Config{Runner: fr.run, Workers: 1, Queue: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(fr.gate)
		s.Close()
	}()

	// First job occupies the worker, second fills the one queue slot.
	// (The worker may not have dequeued the first yet, so allow one
	// extra submission before demanding ErrQueueFull.)
	full := false
	for i := 0; i < 3; i++ {
		_, err := s.Submit(Spec{Impl: fmt.Sprintf("impl-%d", i), Seed: 1})
		if errors.Is(err, ErrQueueFull) {
			full = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !full {
		t.Fatal("queue of capacity 1 accepted 3 submissions without ErrQueueFull")
	}
}

func TestCoalesceInflightDuplicates(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	reg := obs.NewRegistry()
	s, err := New(Config{Runner: fr.run, Workers: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	spec := Spec{Impl: "srsLTE", Seed: 7}
	a, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != b.ID {
		t.Fatalf("duplicate in-flight submission got new job %s, want coalesced onto %s", b.ID, a.ID)
	}
	if got := reg.Counter("jobs.submitted").Value(); got != 1 {
		t.Fatalf("jobs.submitted = %d, want 1 (coalesced)", got)
	}
	close(fr.gate)
	waitTerminal(t, s, a.ID)

	// After completion the key is no longer in flight: with no store the
	// same spec runs again as a genuinely new job.
	c, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID == a.ID {
		t.Fatal("post-completion resubmission coalesced onto a terminal job")
	}
}

func TestStoreCacheHit(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	fr := &fakeRunner{}
	reg := obs.NewRegistry()
	s, err := New(Config{Runner: fr.run, Workers: 1, Store: store, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	spec := Spec{Impl: "srsLTE", Seed: 7, Properties: []string{"S06"}}
	a, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	first := waitTerminal(t, s, a.ID)
	if first.CacheHit {
		t.Fatal("first run reported a cache hit")
	}
	if got := reg.Counter("jobs.cache_misses").Value(); got != 1 {
		t.Fatalf("jobs.cache_misses = %d, want 1", got)
	}

	b, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if b.State != StateDone || !b.CacheHit {
		t.Fatalf("resubmission state=%s cacheHit=%v, want instant done cache hit", b.State, b.CacheHit)
	}
	if got := reg.Counter("jobs.cache_hits").Value(); got != 1 {
		t.Fatalf("jobs.cache_hits = %d, want 1", got)
	}
	if len(fr.order()) != 1 {
		t.Fatalf("runner executed %d times, want 1 (second serve from store)", len(fr.order()))
	}

	// The stored bytes are the canonical encoding of the fresh result.
	wantBytes, err := first.Result.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, _, ok := store.Get(spec.Key())
	if !ok {
		t.Fatal("result missing from store")
	}
	if string(gotBytes) != string(wantBytes) {
		t.Fatalf("stored bytes differ from fresh canonical encoding:\n%s\nvs\n%s", gotBytes, wantBytes)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, err := New(Config{Runner: fr.run, Workers: 1, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(fr.gate)
		s.Close()
	}()

	// impl-0 occupies the worker; impl-1 waits in the queue.
	if _, err := s.Submit(Spec{Impl: "impl-0", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(Spec{Impl: "impl-1", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got.State)
	}
	if got.ExitCode != resilience.KindCancelled.ExitCode() {
		t.Fatalf("exit code = %d, want %d", got.ExitCode, resilience.KindCancelled.ExitCode())
	}
}

func TestCancelRunningJob(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{}), respect: true}
	s, err := New(Config{Runner: fr.run, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(fr.gate)
		s.Close()
	}()

	j, err := s.Submit(Spec{Impl: "impl-0", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick it up, then cancel its context.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := s.Get(j.ID)
		if cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, s, j.ID)
	if done.State != StateCancelled {
		t.Fatalf("state = %s (error %q), want cancelled", done.State, done.Error)
	}
}

func TestPerJobTimeout(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{}), respect: true}
	s, err := New(Config{Runner: fr.run, Workers: 1, Timeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		close(fr.gate)
		s.Close()
	}()

	j, err := s.Submit(Spec{Impl: "impl-0", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, s, j.ID)
	if done.State != StateCancelled {
		t.Fatalf("state = %s (error %q), want cancelled on timeout", done.State, done.Error)
	}
}

func TestFailedJobClassifies(t *testing.T) {
	fr := &fakeRunner{fail: fmt.Errorf("adversary won: %w", resilience.ErrFaultInjected)}
	s, err := New(Config{Runner: fr.run, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	j, err := s.Submit(Spec{Impl: "impl-0", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, s, j.ID)
	if done.State != StateFailed {
		t.Fatalf("state = %s, want failed", done.State)
	}
	if done.Class != resilience.KindFaultInjected.String() {
		t.Fatalf("class = %q, want fault-injected", done.Class)
	}
	if done.ExitCode != resilience.KindFaultInjected.ExitCode() {
		t.Fatalf("exit code = %d, want %d", done.ExitCode, resilience.KindFaultInjected.ExitCode())
	}
}

func TestDrainCancelsQueuedFinishesRunning(t *testing.T) {
	fr := &fakeRunner{gate: make(chan struct{})}
	s, err := New(Config{Runner: fr.run, Workers: 1, Queue: 8})
	if err != nil {
		t.Fatal(err)
	}

	running, err := s.Submit(Spec{Impl: "impl-0", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Let the worker dequeue impl-0 before queueing the rest, so
	// exactly two jobs are still queued at drain time.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := s.Get(running.ID)
		if cur.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	q1, err := s.Submit(Spec{Impl: "impl-1", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s.Submit(Spec{Impl: "impl-2", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan int, 1)
	go func() {
		n, derr := s.Drain(context.Background())
		if derr != nil {
			t.Error(derr)
		}
		drained <- n
	}()
	// Drain must reject new work. Poll with impl-1's spec: before the
	// drain flag flips it coalesces onto q1 (no new job inflating the
	// cancelled count), after it the submission errors.
	waitErr := func() error {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if _, err := s.Submit(Spec{Impl: "impl-1", Seed: 1}); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}()
	if !errors.Is(waitErr, ErrDraining) {
		t.Fatalf("submit during drain = %v, want ErrDraining", waitErr)
	}
	close(fr.gate) // release the running job
	n := <-drained
	if n != 2 {
		t.Fatalf("drain cancelled %d queued jobs, want 2", n)
	}
	if j, _ := s.Get(running.ID); j.State != StateDone {
		t.Fatalf("running job state = %s, want done (drain finishes running work)", j.State)
	}
	for _, id := range []string{q1.ID, q2.ID} {
		if j, _ := s.Get(id); j.State != StateCancelled {
			t.Fatalf("queued job %s state = %s, want cancelled", id, j.State)
		}
	}
	// Idempotent: a second drain returns immediately with 0.
	if n, err := s.Drain(context.Background()); err != nil || n != 0 {
		t.Fatalf("second drain = (%d, %v), want (0, nil)", n, err)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) *Result {
		spec := Spec{Impl: "srsLTE", Seed: seed}
		return &Result{SchemaVersion: ResultSchemaVersion, Key: spec.Key(), Spec: spec}
	}
	r1, r2, r3 := mk(1), mk(2), mk(3)
	for _, r := range []*Result{r1, r2} {
		if _, err := store.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	// Touch r1 so r2 is the LRU victim when r3 arrives.
	if _, _, ok := store.Get(r1.Key); !ok {
		t.Fatal("r1 missing before eviction")
	}
	if _, err := store.Put(r3); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Fatalf("store holds %d entries, want 2", store.Len())
	}
	if store.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", store.Evictions())
	}
	if _, _, ok := store.Get(r2.Key); ok {
		t.Fatal("r2 survived eviction; LRU should have evicted it")
	}
	if _, _, ok := store.Get(r1.Key); !ok {
		t.Fatal("recently-used r1 was evicted")
	}
	if _, err := os.Stat(filepath.Join(dir, r2.Key+".json")); !os.IsNotExist(err) {
		t.Fatalf("evicted entry's file still on disk (stat err %v)", err)
	}
}

func TestStoreReopenAdoptsAndRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Impl: "OAI", Seed: 9}
	res := &Result{SchemaVersion: ResultSchemaVersion, Key: spec.Key(), Spec: spec}
	want, err := store.Put(res)
	if err != nil {
		t.Fatal(err)
	}
	// A stray non-result file must not be adopted.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A corrupt result file is adopted by name but dropped on first read.
	badSpec := Spec{Impl: "srsLTE", Seed: 1}
	if err := os.WriteFile(filepath.Join(dir, badSpec.Key()+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := OpenStore(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reopened store adopted %d entries, want 2", re.Len())
	}
	got, _, ok := re.Get(spec.Key())
	if !ok {
		t.Fatal("reopened store lost the stored result")
	}
	if string(got) != string(want) {
		t.Fatal("reopened store returned different bytes")
	}
	if _, _, ok := re.Get(badSpec.Key()); ok {
		t.Fatal("corrupt entry served as a result")
	}
	if re.Len() != 1 {
		t.Fatalf("corrupt entry not dropped: len = %d, want 1", re.Len())
	}
}

func TestSpecKeyDiscriminates(t *testing.T) {
	base := Spec{Impl: "srsLTE", Faults: "drop=0.15", Seed: 42, Properties: []string{"S06"}, Catalogue: "abc"}
	variants := []Spec{
		{Impl: "OAI", Faults: "drop=0.15", Seed: 42, Properties: []string{"S06"}, Catalogue: "abc"},
		{Impl: "srsLTE", Faults: "drop=0.25", Seed: 42, Properties: []string{"S06"}, Catalogue: "abc"},
		{Impl: "srsLTE", Faults: "drop=0.15", Seed: 43, Properties: []string{"S06"}, Catalogue: "abc"},
		{Impl: "srsLTE", Faults: "drop=0.15", Seed: 42, Properties: []string{"S07"}, Catalogue: "abc"},
		{Impl: "srsLTE", Faults: "drop=0.15", Seed: 42, Properties: []string{"S06"}, Catalogue: "def"},
	}
	for i, v := range variants {
		if v.Key() == base.Key() {
			t.Fatalf("variant %d collides with base key", i)
		}
	}
	same := Spec{Impl: "srsLTE", Faults: "drop=0.15", Seed: 42, Properties: []string{"S06"}, Catalogue: "abc"}
	if same.Key() != base.Key() {
		t.Fatal("equal specs hash to different keys")
	}
	// Nil and empty property selections share one key.
	a := Spec{Impl: "srsLTE", Seed: 1, Properties: nil}
	b := Spec{Impl: "srsLTE", Seed: 1, Properties: []string{}}
	if a.Key() != b.Key() {
		t.Fatal("nil vs empty property selection changed the key")
	}
}

func TestWorstExitCode(t *testing.T) {
	mk := func(class string) Job { return Job{State: StateDone, Class: class} }
	if got := WorstExitCode(nil); got != resilience.ExitOK {
		t.Fatalf("empty list exit = %d, want %d", got, resilience.ExitOK)
	}
	list := []Job{mk("none"), mk("cancelled"), mk("fault-injected")}
	if got := WorstExitCode(list); got != resilience.KindFaultInjected.ExitCode() {
		t.Fatalf("worst exit = %d, want %d", got, resilience.KindFaultInjected.ExitCode())
	}
	list = append(list, mk("internal"))
	if got := WorstExitCode(list); got != resilience.KindInternal.ExitCode() {
		t.Fatalf("worst exit = %d, want %d", got, resilience.KindInternal.ExitCode())
	}
}

func TestSortProperties(t *testing.T) {
	got := SortProperties([]string{"S07", "S06", "S07", "S06"})
	if strings.Join(got, ",") != "S06,S07" {
		t.Fatalf("SortProperties = %v, want [S06 S07]", got)
	}
	if SortProperties(nil) != nil {
		t.Fatal("SortProperties(nil) != nil")
	}
	if SortProperties([]string{}) != nil {
		t.Fatal("SortProperties(empty) != nil")
	}
}
