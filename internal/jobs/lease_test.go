package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"prochecker/internal/obs"
	"prochecker/internal/resilience"
)

// coordinator builds a pure-coordinator service (no local worker pool)
// so tests drive the lease protocol by hand.
func coordinator(t *testing.T, mut func(*Config)) (*Service, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := Config{
		Runner:         (&fakeRunner{}).run,
		NoLocalWorkers: true,
		Metrics:        reg,
		LeaseTTL:       time.Minute, // sweeper stays out of the way
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, reg
}

// resultFor synthesises the deterministic result a worker would upload
// for the leased job.
func resultFor(t *testing.T, j Job) *Result {
	t.Helper()
	res, err := (&fakeRunner{}).run(context.Background(), j.Spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLeaseLifecycle(t *testing.T) {
	s, reg := coordinator(t, nil)
	sub, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	l, j, ok, err := s.AcquireLease("w1")
	if err != nil || !ok {
		t.Fatalf("acquire = ok %v, err %v", ok, err)
	}
	if l.JobID != sub.ID || l.Worker != "w1" || l.Attempt != 1 {
		t.Fatalf("lease = %+v, want job %s worker w1 attempt 1", l, sub.ID)
	}
	if !l.Expiry.After(time.Now()) {
		t.Fatalf("lease expiry %v not in the future", l.Expiry)
	}
	if j.State != StateRunning || j.Worker != "w1" {
		t.Fatalf("job = state %s worker %q, want running on w1", j.State, j.Worker)
	}
	if got := s.Leases(); len(got) != 1 || got[0].ID != l.ID {
		t.Fatalf("Leases() = %+v, want the one grant", got)
	}
	if _, _, ok, err := s.AcquireLease("w2"); ok || err != nil {
		t.Fatalf("second acquire on empty queue = ok %v, err %v", ok, err)
	}

	renewed, err := s.RenewLease(l.ID)
	if err != nil {
		t.Fatal(err)
	}
	if renewed.Expiry.Before(l.Expiry) {
		t.Fatalf("renewal moved expiry backwards: %v -> %v", l.Expiry, renewed.Expiry)
	}
	if _, err := s.RenewLease("l-9999"); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("renew of unknown lease = %v, want ErrUnknownLease", err)
	}

	done, err := s.CompleteLease(l.ID, resultFor(t, j))
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.Result == nil || done.Worker != "w1" {
		t.Fatalf("completed job = %+v, want done with result on w1", done)
	}
	if done.ExitCode != resilience.ExitOK {
		t.Fatalf("exit code = %d, want %d", done.ExitCode, resilience.ExitOK)
	}
	if got := s.Leases(); len(got) != 0 {
		t.Fatalf("Leases() after completion = %+v, want none", got)
	}
	if got := reg.Counter("dist.leases_granted").Value(); got != 1 {
		t.Fatalf("dist.leases_granted = %d, want 1", got)
	}
	if got := reg.Counter("dist.leases_renewed").Value(); got != 1 {
		t.Fatalf("dist.leases_renewed = %d, want 1", got)
	}
	if got := reg.Gauge(obs.LabeledStr("jobs.leases_active", "worker", "w1")).Value(); got != 0 {
		t.Fatalf("jobs.leases_active{worker=w1} = %d, want 0 after release", got)
	}
	if got := reg.Gauge("jobs.running").Value(); got != 0 {
		t.Fatalf("jobs.running = %d, want 0", got)
	}
}

// TestLeaseStaleResultDiscarded pins the idempotent terminal
// transition: the first uploaded result wins, every later settle
// attempt against the released lease is discarded and counted.
func TestLeaseStaleResultDiscarded(t *testing.T) {
	s, reg := coordinator(t, nil)
	if _, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	l, j, ok, err := s.AcquireLease("w1")
	if err != nil || !ok {
		t.Fatalf("acquire = ok %v, err %v", ok, err)
	}
	res := resultFor(t, j)
	first, err := s.CompleteLease(l.ID, res)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.CompleteLease(l.ID, res); !errors.Is(err, ErrStaleResult) {
		t.Fatalf("second upload = %v, want ErrStaleResult", err)
	}
	if _, err := s.FailLease(l.ID, "internal", "late failure"); !errors.Is(err, ErrStaleResult) {
		t.Fatalf("late failure report = %v, want ErrStaleResult", err)
	}
	if got := reg.Counter("dist.stale_results").Value(); got != 2 {
		t.Fatalf("dist.stale_results = %d, want 2", got)
	}
	after, _ := s.Get(first.ID)
	if after.State != StateDone || after.Result == nil {
		t.Fatalf("job after stale uploads = %+v, want untouched done", after)
	}
}

func TestLeaseResultMismatchKeepsLease(t *testing.T) {
	s, _ := coordinator(t, nil)
	if _, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	l, j, ok, err := s.AcquireLease("w1")
	if err != nil || !ok {
		t.Fatalf("acquire = ok %v, err %v", ok, err)
	}

	bogus := resultFor(t, j)
	bogus.Key = "not-the-leased-key"
	if _, err := s.CompleteLease(l.ID, bogus); !errors.Is(err, ErrResultMismatch) {
		t.Fatalf("mismatched upload = %v, want ErrResultMismatch", err)
	}
	if _, err := s.CompleteLease(l.ID, nil); !errors.Is(err, ErrResultMismatch) {
		t.Fatalf("nil upload = %v, want ErrResultMismatch", err)
	}
	// The lease survives a bad upload so the worker can retransmit.
	if got := s.Leases(); len(got) != 1 {
		t.Fatalf("Leases() after mismatch = %+v, want the grant intact", got)
	}
	done, err := s.CompleteLease(l.ID, resultFor(t, j))
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %s, want done", done.State)
	}
}

func TestLeaseExpiryRequeuesThenCompletes(t *testing.T) {
	s, reg := coordinator(t, func(c *Config) { c.Retry = retryPolicy(3) })
	if _, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	l, _, ok, err := s.AcquireLease("w1")
	if err != nil || !ok {
		t.Fatalf("acquire = ok %v, err %v", ok, err)
	}
	if n := s.ExpireLeases(l.Expiry.Add(time.Second)); n != 1 {
		t.Fatalf("ExpireLeases = %d, want 1", n)
	}
	if got := reg.Counter("dist.leases_expired").Value(); got != 1 {
		t.Fatalf("dist.leases_expired = %d, want 1", got)
	}

	// The expired attempt requeues through the retry path (1ms backoff);
	// a second worker picks it up and finishes the job.
	var l2 Lease
	var j2 Job
	deadline := time.Now().Add(5 * time.Second)
	for {
		l2, j2, ok, err = s.AcquireLease("w2")
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired job never requeued")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if l2.Attempt != 2 || l2.Worker != "w2" {
		t.Fatalf("reacquired lease = %+v, want attempt 2 on w2", l2)
	}
	done, err := s.CompleteLease(l2.ID, resultFor(t, j2))
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.Worker != "w2" {
		t.Fatalf("job = %+v, want done on w2", done)
	}
}

func TestLeaseExpiryWithoutRetriesFails(t *testing.T) {
	s, _ := coordinator(t, nil) // zero retry policy: single attempt
	sub, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, _, ok, err := s.AcquireLease("w1")
	if err != nil || !ok {
		t.Fatalf("acquire = ok %v, err %v", ok, err)
	}
	if n := s.ExpireLeases(l.Expiry.Add(time.Second)); n != 1 {
		t.Fatalf("ExpireLeases = %d, want 1", n)
	}
	j, _ := s.Get(sub.ID)
	if j.State != StateFailed {
		t.Fatalf("state = %s (error %q), want failed", j.State, j.Error)
	}
	if j.Class != resilience.KindLeaseExpired.String() {
		t.Fatalf("class = %q, want %s", j.Class, resilience.KindLeaseExpired)
	}
	if j.ExitCode != resilience.ExitLeaseExpired {
		t.Fatalf("exit code = %d, want %d", j.ExitCode, resilience.ExitLeaseExpired)
	}
}

func TestLeaseExpiryExhaustsIntoQuarantine(t *testing.T) {
	s, _ := coordinator(t, func(c *Config) { c.Retry = retryPolicy(2) })
	sub, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 2; attempt++ {
		var l Lease
		var ok bool
		deadline := time.Now().Add(5 * time.Second)
		for {
			l, _, ok, err = s.AcquireLease("w1")
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("attempt %d never became acquirable", attempt)
			}
			time.Sleep(2 * time.Millisecond)
		}
		if l.Attempt != attempt {
			t.Fatalf("lease attempt = %d, want %d", l.Attempt, attempt)
		}
		if n := s.ExpireLeases(l.Expiry.Add(time.Second)); n != 1 {
			t.Fatalf("ExpireLeases = %d, want 1", n)
		}
	}
	j, _ := s.Get(sub.ID)
	if j.State != StateQuarantined {
		t.Fatalf("state = %s (error %q), want quarantined", j.State, j.Error)
	}
	if j.Class != resilience.KindRetryExhausted.String() {
		t.Fatalf("class = %q, want %s", j.Class, resilience.KindRetryExhausted)
	}
}

// TestFailLeaseAbandonRequeuesUncharged pins the worker-shutdown path:
// a cancelled-class failure from a live coordinator hands the job back
// without spending an attempt.
func TestFailLeaseAbandonRequeuesUncharged(t *testing.T) {
	s, reg := coordinator(t, nil)
	if _, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	l, _, ok, err := s.AcquireLease("w1")
	if err != nil || !ok {
		t.Fatalf("acquire = ok %v, err %v", ok, err)
	}
	j, err := s.FailLease(l.ID, "cancelled", "worker shutting down")
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued {
		t.Fatalf("state = %s, want queued", j.State)
	}
	if got := reg.Counter("dist.leases_abandoned").Value(); got != 1 {
		t.Fatalf("dist.leases_abandoned = %d, want 1", got)
	}
	l2, _, ok, err := s.AcquireLease("w2")
	if err != nil || !ok {
		t.Fatalf("reacquire = ok %v, err %v", ok, err)
	}
	if l2.Attempt != 1 {
		t.Fatalf("attempt after abandonment = %d, want 1 (uncharged)", l2.Attempt)
	}
}

func TestFailLeaseClassifiedFailure(t *testing.T) {
	s, _ := coordinator(t, nil)
	sub, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, _, ok, err := s.AcquireLease("w1")
	if err != nil || !ok {
		t.Fatalf("acquire = ok %v, err %v", ok, err)
	}
	if _, err := s.FailLease(l.ID, "internal", "segfault in worker"); err != nil {
		t.Fatal(err)
	}
	j, _ := s.Get(sub.ID)
	if j.State != StateFailed || j.Class != "internal" {
		t.Fatalf("job = state %s class %q, want failed/internal", j.State, j.Class)
	}
	if j.ExitCode != resilience.ExitInternal {
		t.Fatalf("exit code = %d, want %d", j.ExitCode, resilience.ExitInternal)
	}
}

func TestFailLeaseRetryableClassRetries(t *testing.T) {
	s, _ := coordinator(t, func(c *Config) { c.Retry = retryPolicy(3) })
	if _, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	l, _, ok, err := s.AcquireLease("w1")
	if err != nil || !ok {
		t.Fatalf("acquire = ok %v, err %v", ok, err)
	}
	if _, err := s.FailLease(l.ID, "fault-injected", "transient channel fault"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		l2, _, ok, err := s.AcquireLease("w2")
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			if l2.Attempt != 2 {
				t.Fatalf("retry attempt = %d, want 2", l2.Attempt)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("retryable failure never requeued")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCancelLeasedJob: a coordinator-side cancel releases the lease and
// turns the worker's eventual upload into a discarded stale result.
func TestCancelLeasedJob(t *testing.T) {
	s, reg := coordinator(t, nil)
	sub, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, j, ok, err := s.AcquireLease("w1")
	if err != nil || !ok {
		t.Fatalf("acquire = ok %v, err %v", ok, err)
	}
	cancelled, err := s.Cancel(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cancelled.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", cancelled.State)
	}
	if got := s.Leases(); len(got) != 0 {
		t.Fatalf("Leases() after cancel = %+v, want none", got)
	}
	if _, err := s.CompleteLease(l.ID, resultFor(t, j)); !errors.Is(err, ErrStaleResult) {
		t.Fatalf("upload after cancel = %v, want ErrStaleResult", err)
	}
	if got := reg.Counter("dist.stale_results").Value(); got != 1 {
		t.Fatalf("dist.stale_results = %d, want 1", got)
	}
}

func TestAcquireDuringDrainRefused(t *testing.T) {
	s, _ := coordinator(t, nil)
	if _, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	l, j, ok, err := s.AcquireLease("w1")
	if err != nil || !ok {
		t.Fatalf("acquire = ok %v, err %v", ok, err)
	}

	drained := make(chan error, 1)
	go func() {
		_, derr := s.Drain(context.Background())
		drained <- derr
	}()
	// Wait for drain mode, then confirm new grants are refused while
	// heartbeats and settles still work.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, _, aerr := s.AcquireLease("w2")
		if errors.Is(aerr, ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never engaged")
		}
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v before the lease settled", err)
	default:
	}
	if _, err := s.RenewLease(l.ID); err != nil {
		t.Fatalf("renew during drain = %v, want success", err)
	}
	if _, err := s.CompleteLease(l.ID, resultFor(t, j)); err != nil {
		t.Fatal(err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain = %v", err)
	}
}

// TestLeaseRecoveryReadopts: a coordinator restart re-adopts unexpired
// grants from the WAL — the job stays running under its worker and the
// worker's heartbeat and result land normally.
func TestLeaseRecoveryReadopts(t *testing.T) {
	walDir := t.TempDir()
	spec := Spec{Impl: "held-across-restart", Seed: 7}
	queued := Spec{Impl: "still-queued", Seed: 8}
	now := time.Now().UTC()
	seedWAL(t, walDir, []Record{
		{Type: RecSubmitted, ID: "j-0001", Key: spec.Key(), Spec: &spec, At: now},
		{Type: RecSubmitted, ID: "j-0002", Key: queued.Key(), Spec: &queued, At: now},
		{Type: RecStarted, ID: "j-0001", Attempt: 1, At: now},
		{Type: RecLease, ID: "j-0001", Lease: "l-0003", Worker: "w9",
			Action: LeaseGrant, Expiry: now.Add(time.Hour), At: now},
	})

	s, reg := coordinator(t, func(c *Config) { c.WALDir = walDir })
	st := s.Recovery()
	if st.LeasesRestored != 1 {
		t.Fatalf("LeasesRestored = %d, want 1", st.LeasesRestored)
	}
	if got := reg.Counter("jobs.recovered_leases").Value(); got != 1 {
		t.Fatalf("jobs.recovered_leases = %d, want 1", got)
	}
	j, okj := s.Get("j-0001")
	if !okj || j.State != StateRunning || !j.Recovered || j.Worker != "w9" {
		t.Fatalf("restored job = %+v, want recovered running on w9", j)
	}
	leases := s.Leases()
	if len(leases) != 1 || leases[0].ID != "l-0003" || leases[0].Worker != "w9" {
		t.Fatalf("Leases() = %+v, want restored l-0003 for w9", leases)
	}

	// New grants must not collide with the restored lease ID.
	l2, _, ok, err := s.AcquireLease("w1")
	if err != nil || !ok {
		t.Fatalf("acquire of queued job = ok %v, err %v", ok, err)
	}
	if l2.ID <= "l-0003" {
		t.Fatalf("new lease ID %s does not advance past restored l-0003", l2.ID)
	}

	// The original worker's heartbeat and result still land.
	if _, err := s.RenewLease("l-0003"); err != nil {
		t.Fatal(err)
	}
	done, err := s.CompleteLease("l-0003", resultFor(t, j))
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone || done.Worker != "w9" {
		t.Fatalf("job = %+v, want done on w9", done)
	}
}

// TestLeaseRecoveryExpiredGrantRequeues: a grant that ran out before
// the restart is not re-adopted — the job requeues like any interrupted
// attempt, uncharged.
func TestLeaseRecoveryExpiredGrantRequeues(t *testing.T) {
	walDir := t.TempDir()
	spec := Spec{Impl: "lease-ran-out", Seed: 7}
	now := time.Now().UTC()
	seedWAL(t, walDir, []Record{
		{Type: RecSubmitted, ID: "j-0001", Key: spec.Key(), Spec: &spec, At: now.Add(-time.Hour)},
		{Type: RecStarted, ID: "j-0001", Attempt: 1, At: now.Add(-time.Hour)},
		{Type: RecLease, ID: "j-0001", Lease: "l-0001", Worker: "w9",
			Action: LeaseGrant, Expiry: now.Add(-30 * time.Minute), At: now.Add(-time.Hour)},
	})

	s, _ := coordinator(t, func(c *Config) { c.WALDir = walDir })
	st := s.Recovery()
	if st.LeasesRestored != 0 || st.Requeued != 1 {
		t.Fatalf("recovery = %+v, want 0 restored / 1 requeued", st)
	}
	l, _, ok, err := s.AcquireLease("w1")
	if err != nil || !ok {
		t.Fatalf("acquire = ok %v, err %v", ok, err)
	}
	if l.Attempt != 1 {
		t.Fatalf("attempt = %d, want 1 (interrupted attempt uncharged)", l.Attempt)
	}
}

// TestLeaseRecoveryReleasedGrantRequeues: a grant followed by a release
// record leaves no live lease to re-adopt.
func TestLeaseRecoveryReleasedGrantRequeues(t *testing.T) {
	walDir := t.TempDir()
	spec := Spec{Impl: "released-before-crash", Seed: 7}
	now := time.Now().UTC()
	seedWAL(t, walDir, []Record{
		{Type: RecSubmitted, ID: "j-0001", Key: spec.Key(), Spec: &spec, At: now},
		{Type: RecStarted, ID: "j-0001", Attempt: 1, At: now},
		{Type: RecLease, ID: "j-0001", Lease: "l-0001", Worker: "w9",
			Action: LeaseGrant, Expiry: now.Add(time.Hour), At: now},
		{Type: RecLease, ID: "j-0001", Lease: "l-0001", Worker: "w9",
			Action: LeaseRelease, At: now},
	})

	s, _ := coordinator(t, func(c *Config) { c.WALDir = walDir })
	if st := s.Recovery(); st.LeasesRestored != 0 || st.Requeued != 1 {
		t.Fatalf("recovery = %+v, want 0 restored / 1 requeued", st)
	}
	if got := s.Leases(); len(got) != 0 {
		t.Fatalf("Leases() = %+v, want none", got)
	}
}

// TestLeaseSurvivesCheckpoint: WAL compaction preserves the active
// grant, so a restart after a checkpoint still re-adopts it.
func TestLeaseSurvivesCheckpoint(t *testing.T) {
	walDir := t.TempDir()
	s, _ := coordinator(t, func(c *Config) { c.WALDir = walDir })
	if _, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	l, _, ok, err := s.AcquireLease("w1")
	if err != nil || !ok {
		t.Fatalf("acquire = ok %v, err %v", ok, err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Inspect the compacted log directly: Close would cancel the leased
	// job and erase the grant we are asserting on.
	w, recs, err := OpenWAL(walDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Close() //nolint:errcheck // read-only inspection
	grants := 0
	for _, rec := range recs {
		if rec.Type == RecLease && rec.Action == LeaseGrant && rec.Lease == l.ID {
			grants++
		}
	}
	if grants != 1 {
		t.Fatalf("compacted WAL has %d grant records for %s, want 1", grants, l.ID)
	}
}

// TestLogMetaReplaceKeepsLatest: replace-by-ID metas survive replay as
// a single live record holding the newest payload.
func TestLogMetaReplaceKeepsLatest(t *testing.T) {
	walDir := t.TempDir()
	s, _ := coordinator(t, func(c *Config) { c.WALDir = walDir })
	if err := s.LogMetaReplace("tenant:alice", json.RawMessage(`{"tokens":5}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.LogMetaReplace("tenant:alice", json.RawMessage(`{"tokens":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.LogMeta("audit", json.RawMessage(`{"n":1}`)); err != nil {
		t.Fatal(err)
	}
	if metas := s.Metas(); len(metas) != 2 {
		t.Fatalf("live metas = %d, want 2 (replaced + appended)", len(metas))
	}
	s.Close()

	s2, _ := coordinator(t, func(c *Config) { c.WALDir = walDir })
	metas := s2.Metas()
	var alice []Record
	for _, m := range metas {
		if m.ID == "tenant:alice" {
			alice = append(alice, m)
		}
	}
	if len(alice) != 1 || string(alice[0].Meta) != `{"tokens":2}` {
		t.Fatalf("replayed tenant metas = %+v, want one record with the latest payload", alice)
	}
}
