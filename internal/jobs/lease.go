package jobs

// Distributed execution: the lease state machine that turns the service
// into a coordinator for a fleet of pull-mode workers. A worker
// acquires a queued job under a TTL'd lease, heartbeats to keep it, and
// uploads the canonical result (or a classified failure) to settle it.
// A lease that stops heartbeating expires: the sweeper releases it and
// the job requeues through the ordinary taxonomy-driven retry path with
// the lease-expired class. Every grant, renewal and release is
// journalled to the WAL, so crash recovery spans worker assignments — a
// restarted coordinator re-adopts unexpired leases instead of
// scheduling the same job under its worker's feet.

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"prochecker/internal/obs"
	"prochecker/internal/resilience"
)

// DefaultLeaseTTL bounds a worker's silence when Config.LeaseTTL is
// zero: generous enough for a heartbeat every TTL/3 to survive GC
// pauses and transient network trouble, short enough that a crashed
// worker's jobs requeue promptly.
const DefaultLeaseTTL = 30 * time.Second

// Lease-protocol failure modes.
var (
	// ErrUnknownLease marks renew/complete/fail calls naming a lease
	// that was never granted or has already been released.
	ErrUnknownLease = errors.New("jobs: unknown lease")
	// ErrStaleResult marks a result or failure upload for a lease that
	// expired or was released: the job has moved on (first result
	// wins), so the upload is discarded, never double-completed.
	ErrStaleResult = errors.New("jobs: stale upload for released lease")
	// ErrResultMismatch marks an uploaded result whose key is not the
	// leased job's spec key.
	ErrResultMismatch = errors.New("jobs: uploaded result does not match leased spec")
)

// Lease is the API shape of one worker assignment: which job, which
// worker, which attempt, and until when the assignment holds without a
// heartbeat.
type Lease struct {
	ID      string    `json:"id"`
	JobID   string    `json:"job_id"`
	Worker  string    `json:"worker"`
	Attempt int       `json:"attempt"`
	Expiry  time.Time `json:"expiry"`
}

// LeaseTTL reports the TTL new and renewed leases are granted under.
func (s *Service) LeaseTTL() time.Duration { return s.cfg.LeaseTTL }

// AcquireLease hands the oldest queued job to the named worker under a
// fresh TTL'd lease. ok is false when nothing is queued; a draining
// coordinator grants nothing (ErrDraining). The grant is journalled
// (started + lease records) before it is acknowledged.
func (s *Service) AcquireLease(worker string) (Lease, Job, bool, error) {
	if worker == "" {
		worker = "anonymous"
	}
	reg := s.cfg.Metrics
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Lease{}, Job{}, false, ErrDraining
	}
	var t *task
	for len(s.pending) > 0 {
		cand := s.pending[0]
		s.pending = s.pending[1:]
		if cand.state == StateQueued { // skip tasks cancelled while waiting
			t = cand
			break
		}
	}
	if t == nil {
		return Lease{}, Job{}, false, nil
	}
	t.state = StateRunning
	t.attempts++
	firstAttempt := t.started.IsZero()
	if firstAttempt {
		t.started = time.Now()
	}
	s.nqueued--
	s.leaseSeq++
	t.leaseID = fmt.Sprintf("l-%04d", s.leaseSeq)
	t.worker = worker
	t.leaseExpiry = time.Now().Add(s.cfg.LeaseTTL)
	s.leases[t.leaseID] = t
	if s.wal != nil {
		now := time.Now().UTC()
		s.wal.Append(Record{ //nolint:errcheck // replay reruns the attempt at worst
			Type: RecStarted, ID: t.id, Attempt: t.attempts, At: now,
		})
		s.wal.Append(Record{ //nolint:errcheck // same: an unjournalled grant replays as queued
			Type: RecLease, ID: t.id, Lease: t.leaseID, Worker: worker,
			Action: LeaseGrant, Expiry: t.leaseExpiry.UTC(), At: now,
		})
	}
	reg.Counter("dist.leases_granted").Inc()
	reg.Gauge(obs.LabeledStr("jobs.leases_active", "worker", worker)).Add(1)
	reg.Gauge("jobs.queue_depth").Add(-1)
	reg.Gauge("jobs.running").Add(1)
	if firstAttempt {
		reg.Histogram("jobs.queue_latency_ms", nil).Observe(obs.DurMS(t.started.Sub(t.submitted)))
	}
	s.publishLeaseLocked(t, t.leaseID, "granted")
	s.publishJobLocked(t, string(StateRunning))
	s.publishQueueDepthLocked()
	return s.leaseLocked(t), s.snapshotLocked(t), true, nil
}

// RenewLease extends a held lease by the TTL — the heartbeat. Renewing
// keeps working while the coordinator drains, so in-flight remote jobs
// finish instead of being orphaned mid-drain.
func (s *Service) RenewLease(id string) (Lease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.leases[id]
	if !ok {
		return Lease{}, fmt.Errorf("%w: %s", ErrUnknownLease, id)
	}
	t.leaseExpiry = time.Now().Add(s.cfg.LeaseTTL)
	if s.wal != nil {
		s.wal.Append(Record{ //nolint:errcheck // an unjournalled renewal expires at worst
			Type: RecLease, ID: t.id, Lease: id, Worker: t.worker,
			Action: LeaseRenew, Expiry: t.leaseExpiry.UTC(), At: time.Now().UTC(),
		})
	}
	s.cfg.Metrics.Counter("dist.leases_renewed").Inc()
	return s.leaseLocked(t), nil
}

// CompleteLease settles a leased job with its uploaded result: the
// result is persisted to the content-addressed store, the job ends
// done, and the lease is released. The terminal transition is
// idempotent — an upload for a lease that expired or was already
// released is discarded (first result wins, dist.stale_results counts
// the discard) instead of double-completing the job.
func (s *Service) CompleteLease(id string, res *Result) (Job, error) {
	reg := s.cfg.Metrics
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.leases[id]
	if !ok {
		reg.Counter("dist.stale_results").Inc()
		return Job{}, fmt.Errorf("%w: %s", ErrStaleResult, id)
	}
	if res == nil || res.Key != t.key {
		got := "<nil>"
		if res != nil {
			got = res.Key
		}
		return Job{}, fmt.Errorf("%w: lease %s wants key %s, got %s", ErrResultMismatch, id, t.key, got)
	}
	leaseID := t.leaseID
	s.releaseLeaseLocked(t)
	t.state = StateDone
	t.finished = time.Now()
	t.result = res
	delete(s.inflight, t.key)
	if _, perr := s.cfg.Store.Put(res); perr != nil {
		// The verdicts are still good; losing the cache entry only
		// costs a future recomputation.
		reg.Counter("jobs.store_put_errors").Inc()
	}
	reg.Gauge("jobs.store_entries").Set(int64(s.cfg.Store.Len()))
	reg.Gauge("jobs.store_evictions").Set(s.cfg.Store.Evictions())
	reg.Gauge("jobs.store_quarantined").Set(s.cfg.Store.Quarantined())
	s.publishLeaseLocked(t, leaseID, "completed")
	s.walTerminalLocked(t) //nolint:errcheck // result is stored; replay adopts it
	s.terminalMetricsLocked(t)
	return s.snapshotLocked(t), nil
}

// FailLease settles a leased job with a worker-reported failure in the
// resilience class vocabulary. A cancelled class from a live
// coordinator is an abandonment — the worker is shutting down, not the
// job — so the attempt requeues uncharged, exactly like a
// crash-replayed interrupted attempt. Every other class goes through
// the ordinary taxonomy-driven retry/finalize path. Like CompleteLease,
// reports against a released lease are discarded as stale.
func (s *Service) FailLease(id, class, msg string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.leases[id]
	if !ok {
		s.cfg.Metrics.Counter("dist.stale_results").Inc()
		return Job{}, fmt.Errorf("%w: %s", ErrStaleResult, id)
	}
	leaseID := t.leaseID
	s.releaseLeaseLocked(t)
	kind, _ := resilience.ParseKind(class)
	if kind == resilience.KindCancelled && !s.draining {
		if t.attempts > 0 {
			t.attempts--
		}
		t.state = StateQueued
		t.err = nil
		s.pending = append(s.pending, t)
		s.nqueued++
		s.cond.Signal()
		s.cfg.Metrics.Counter("dist.leases_abandoned").Inc()
		s.cfg.Metrics.Gauge("jobs.queue_depth").Add(1)
		s.publishLeaseLocked(t, leaseID, "abandoned")
		s.publishJobLocked(t, "requeued")
		s.publishQueueDepthLocked()
		return s.snapshotLocked(t), nil
	}
	err := ClassifiedError(class, msg)
	s.publishLeaseLocked(t, leaseID, "failed")
	if !s.retryLocked(t, err) {
		s.finalizeFailureLocked(t, err)
	}
	return s.snapshotLocked(t), nil
}

// Leases snapshots the active leases, ordered by lease ID.
func (s *Service) Leases() []Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Lease, 0, len(s.leases))
	for _, t := range s.leases {
		out = append(out, s.leaseLocked(t))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ExpireLeases releases every lease whose expiry is at or before now,
// requeueing (or finalizing, when retries are spent or disabled) the
// leased jobs with the lease-expired class. The background sweeper
// calls it on a TTL/4 tick; tests call it directly for determinism. It
// returns how many leases expired.
func (s *Service) ExpireLeases(now time.Time) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, t := range s.leases {
		if t.leaseExpiry.After(now) {
			continue
		}
		n++
		s.releaseLeaseLocked(t)
		s.cfg.Metrics.Counter("dist.leases_expired").Inc()
		err := fmt.Errorf("jobs: lease %s for %s held by %s expired after attempt %d: %w",
			id, t.id, t.worker, t.attempts, resilience.ErrLeaseExpired)
		s.publishLeaseLocked(t, id, "expired")
		if !s.retryLocked(t, err) {
			s.finalizeFailureLocked(t, err)
		}
	}
	return n
}

// sweeper expires abandoned leases in the background until drain
// completes.
func (s *Service) sweeper() {
	defer close(s.sweepDone)
	tick := s.cfg.LeaseTTL / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 5*time.Second {
		tick = 5 * time.Second
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-tk.C:
			s.ExpireLeases(time.Now())
		}
	}
}

// releaseLeaseLocked drops t's active lease: out of the table, a
// release record in the WAL, and the per-worker gauges back down. The
// task keeps its worker name for snapshot attribution.
func (s *Service) releaseLeaseLocked(t *task) {
	delete(s.leases, t.leaseID)
	if s.wal != nil {
		s.wal.Append(Record{ //nolint:errcheck // a lost release replays as an expired lease
			Type: RecLease, ID: t.id, Lease: t.leaseID, Worker: t.worker,
			Action: LeaseRelease, At: time.Now().UTC(),
		})
	}
	s.cfg.Metrics.Gauge(obs.LabeledStr("jobs.leases_active", "worker", t.worker)).Add(-1)
	s.cfg.Metrics.Gauge("jobs.running").Add(-1)
	t.leaseID = ""
	t.leaseExpiry = time.Time{}
}

// cancelLeasedLocked finalises a remotely-running job that was
// cancelled at the coordinator: the lease is released and a late upload
// from its worker will be discarded as stale.
func (s *Service) cancelLeasedLocked(t *task) {
	leaseID := t.leaseID
	s.releaseLeaseLocked(t)
	t.state = StateCancelled
	t.err = fmt.Errorf("jobs: %s cancelled while leased to %s: %w", t.id, t.worker, resilience.ErrCancelled)
	t.finished = time.Now()
	delete(s.inflight, t.key)
	s.publishLeaseLocked(t, leaseID, "cancelled")
	s.walTerminalLocked(t) //nolint:errcheck // cancellation is already final
	s.terminalMetricsLocked(t)
}

// waitLeasesDrained blocks until every active lease has settled —
// completed or failed by its worker, or expired by the sweeper. Drain's
// barrier for remote attempts, mirroring wg.Wait for local ones.
func (s *Service) waitLeasesDrained() {
	for {
		s.mu.Lock()
		n := len(s.leases)
		s.mu.Unlock()
		if n == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// leaseLocked freezes t's lease into its API shape.
func (s *Service) leaseLocked(t *task) Lease {
	return Lease{ID: t.leaseID, JobID: t.id, Worker: t.worker, Attempt: t.attempts, Expiry: t.leaseExpiry}
}

// publishLeaseLocked emits one lease lifecycle transition on the event
// bus, scoped to the job so per-job SSE streams and flight recordings
// carry the worker assignment history.
func (s *Service) publishLeaseLocked(t *task, leaseID, name string) {
	if s.bus == nil {
		return
	}
	s.bus.Publish(obs.BusEvent{
		Type: "lease", Scope: t.id, Name: name,
		Attrs: map[string]string{
			"lease":   leaseID,
			"worker":  t.worker,
			"attempt": strconv.Itoa(t.attempts),
		},
	})
}
