// Package jobs is the batch-analysis subsystem: a bounded FIFO job
// queue with backpressure, a worker pool executing analysis specs
// through an injected runner, and a content-addressed on-disk result
// store with LRU eviction that dedupes repeated work.
//
// The package is deliberately protocol-agnostic: a Spec is data, the
// Runner that turns a Spec into a Result is injected (the root
// prochecker package provides one built on AnalyzeContext), and an
// optional Normalize hook canonicalises specs before they are hashed,
// so equivalent submissions ("srslte" vs "srsLTE", "drop=0.05,corrupt=0"
// vs "drop=0.05") collapse onto one cache key.
package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
)

// Spec is one analysis job's content: which implementation to analyse,
// under which fault-injection adversary, and which properties to check.
// Its canonical JSON encoding is the job's identity — two specs with
// equal fields share one Key and therefore one stored Result.
type Spec struct {
	// Impl names the implementation profile ("conformant", "srsLTE",
	// "OAI"; normalization makes the match case-insensitive).
	Impl string `json:"impl"`
	// Faults is the fault-injection spec in channel.ParseFaultSpec
	// syntax; empty means a benign link.
	Faults string `json:"faults,omitempty"`
	// Seed drives the fault adversary's PRNGs; it participates in the
	// key even for benign runs so explicitly re-seeded submissions stay
	// distinct.
	Seed int64 `json:"seed"`
	// Properties selects catalogue property IDs; empty means the full
	// catalogue.
	Properties []string `json:"properties,omitempty"`
	// Catalogue is the property-catalogue fingerprint the result was
	// (or will be) computed against: a catalogue change invalidates
	// every cached verdict by changing every key.
	Catalogue string `json:"catalogue,omitempty"`
	// NoVacuityPrune disables the model checker's static vacuity
	// pre-pass for this job. It participates in the key (omitempty
	// keeps default-spec keys stable): a pruned and an unpruned run
	// store distinct results even though their verdicts agree.
	NoVacuityPrune bool `json:"no_vacuity_prune,omitempty"`
}

// Key is the spec's content address: the SHA-256 of its canonical JSON
// encoding, in hex. Call it on normalized specs — the service hashes
// after its Normalize hook ran.
func (s Spec) Key() string {
	// Canonical form: fixed field order from the struct, nil for an
	// empty property selection.
	if len(s.Properties) == 0 {
		s.Properties = nil
	}
	b, err := json.Marshal(s)
	if err != nil {
		// A Spec of plain strings and ints cannot fail to marshal.
		panic(fmt.Sprintf("jobs: marshalling spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// SnapshotDirFor maps a job key onto its private exploration-snapshot
// directory under root: each job checkpoints (and resumes) in its own
// subdirectory so concurrent jobs never share checkpoint files. An
// empty root or key disables snapshotting.
func SnapshotDirFor(root, key string) string {
	if root == "" || key == "" {
		return ""
	}
	short := key
	if len(short) > 16 {
		short = short[:16]
	}
	return filepath.Join(root, "snap-"+short)
}

// Verdict is one property's outcome inside a stored Result. It carries
// only deterministic fields — no durations — so a cached result is
// byte-identical to a fresh computation of the same spec.
type Verdict struct {
	ID          string `json:"id"`
	Class       string `json:"class"`
	Verified    bool   `json:"verified"`
	AttackFound bool   `json:"attack_found"`
	// Vacuous marks a property the static vacuity pre-pass discharged
	// without exploration (verified, trigger statically unreachable).
	Vacuous bool   `json:"vacuous,omitempty"`
	Detail  string `json:"detail"`
}

// ResultSchemaVersion stamps stored results so a future layout change
// can skip stale files instead of misreading them. Version 2 added the
// model-lint summary.
const ResultSchemaVersion = 2

// LintSummary condenses the model-lint pre-check of the analysis behind
// a job: severity counts plus the distinct diagnostic codes, all
// deterministic for a given spec.
type LintSummary struct {
	Errors   int      `json:"errors"`
	Warnings int      `json:"warnings"`
	Infos    int      `json:"infos"`
	Codes    []string `json:"codes,omitempty"`
}

// String renders the compact per-job form ("0E/3W/1I").
func (l *LintSummary) String() string {
	if l == nil {
		return "-"
	}
	return fmt.Sprintf("%dE/%dW/%dI", l.Errors, l.Warnings, l.Infos)
}

// Result is a completed job's verdict set, keyed by the spec that
// produced it. Everything in it is deterministic for a given spec.
type Result struct {
	SchemaVersion int          `json:"schema_version"`
	Key           string       `json:"key"`
	Spec          Spec         `json:"spec"`
	Lint          *LintSummary `json:"lint,omitempty"`
	Verdicts      []Verdict    `json:"verdicts"`
}

// Attacks counts the verdicts that reported a realizable attack.
func (r *Result) Attacks() int {
	n := 0
	for _, v := range r.Verdicts {
		if v.AttackFound {
			n++
		}
	}
	return n
}

// MarshalCanonical renders the result in the exact byte form the store
// persists: indented JSON with a trailing newline, fields in struct
// order. Differential tests compare these bytes between a fresh
// computation and a cache hit.
func (r *Result) MarshalCanonical() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("jobs: marshalling result: %w", err)
	}
	return append(b, '\n'), nil
}
