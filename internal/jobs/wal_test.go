package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"prochecker/internal/obs"
)

func walRecord(i int) Record {
	spec := Spec{Impl: "srsran", Properties: []string{"P1"}}
	return Record{
		Type: RecSubmitted,
		ID:   fmt.Sprintf("j-%04d", i),
		Key:  spec.Key(),
		Spec: &spec,
		At:   time.Date(2026, 1, 1, 0, 0, i, 0, time.UTC),
	}
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, recs, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records, want 0", len(recs))
	}
	want := []Record{
		walRecord(1),
		{Type: RecStarted, ID: "j-0001", Attempt: 1, At: time.Date(2026, 1, 1, 0, 1, 0, 0, time.UTC)},
		{Type: RecTerminal, ID: "j-0001", State: StateFailed, Class: "fault-injected", Error: "boom", At: time.Date(2026, 1, 1, 0, 2, 0, 0, time.UTC)},
		{Type: RecMeta, ID: "c-0001", Meta: json.RawMessage(`{"job_ids":["j-0001"]}`)},
	}
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2, got, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		wb, _ := json.Marshal(want[i])
		gb, _ := json.Marshal(got[i])
		if string(wb) != string(gb) {
			t.Errorf("record %d: got %s, want %s", i, gb, wb)
		}
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	w, _, err := OpenWAL(dir, reg)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	for i := 1; i <= 3; i++ {
		if err := w.Append(walRecord(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-append: a partial record with no newline.
	seg := filepath.Join(dir, "wal-000001.log")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`deadbeef {"type":"submitted","id":"j-99`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(seg)

	w2, recs, err := OpenWAL(dir, reg)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records past torn tail, want 3", len(recs))
	}
	if got := reg.Counter("wal.torn_tails").Value(); got != 1 {
		t.Errorf("wal.torn_tails = %d, want 1", got)
	}
	after, _ := os.Stat(seg)
	if after.Size() >= before.Size() {
		t.Errorf("torn tail not truncated: %d >= %d bytes", after.Size(), before.Size())
	}
	// Appends after recovery extend the clean prefix.
	if err := w2.Append(walRecord(4)); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	w2.Close()
	_, recs, err = OpenWAL(dir, nil)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("replayed %d records after post-recovery append, want 4", len(recs))
	}
}

func TestWALChecksumDamageStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := w.Append(walRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Flip a payload byte in the second record; its checksum no longer
	// matches, so replay keeps only the intact prefix (record 1).
	seg := filepath.Join(dir, "wal-000001.log")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for i, c := range b {
		if c == '\n' {
			lines++
			if lines == 1 {
				b[i+12] ^= 0xff
				break
			}
		}
	}
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	w2, recs, err := OpenWAL(dir, reg)
	if err != nil {
		t.Fatalf("reopen over damaged record: %v", err)
	}
	defer w2.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1 (intact prefix)", len(recs))
	}
	if got := reg.Counter("wal.replay_skipped").Value(); got != 1 {
		t.Errorf("wal.replay_skipped = %d, want 1", got)
	}
}

func TestWALSegmentRotationAndReplayOrder(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	w, _, err := OpenWAL(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	w.segBytes = 256 // force rotation every few records
	const n = 40
	for i := 1; i <= n; i++ {
		if err := w.Append(walRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	if got := reg.Counter("wal.rotations").Value(); got == 0 {
		t.Fatal("no segment rotations despite tiny segment bound")
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %v (err %v)", segs, err)
	}

	w2, recs, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if len(recs) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(recs), n)
	}
	for i, rec := range recs {
		if want := fmt.Sprintf("j-%04d", i+1); rec.ID != want {
			t.Fatalf("record %d out of order: got %s, want %s", i, rec.ID, want)
		}
	}
}

func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	w, _, err := OpenWAL(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	w.segBytes = 256
	for i := 1; i <= 40; i++ {
		if err := w.Append(walRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	live := []Record{walRecord(39), walRecord(40)}
	if err := w.Compact(live); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("compaction left %d segments, want 1: %v", len(segs), segs)
	}
	// The compacted WAL still accepts appends and replays condensed
	// state + new appends in order.
	if err := w.Append(walRecord(41)); err != nil {
		t.Fatalf("Append after Compact: %v", err)
	}
	w.Close()
	w2, recs, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	ids := make([]string, len(recs))
	for i, r := range recs {
		ids[i] = r.ID
	}
	if len(recs) != 3 || ids[0] != "j-0039" || ids[1] != "j-0040" || ids[2] != "j-0041" {
		t.Fatalf("post-compaction replay = %v, want [j-0039 j-0040 j-0041]", ids)
	}
	if got := reg.Counter("wal.compactions").Value(); got != 1 {
		t.Errorf("wal.compactions = %d, want 1", got)
	}
}

func TestWALNilSafe(t *testing.T) {
	var w *WAL
	if err := w.Append(walRecord(1)); err != nil {
		t.Errorf("nil Append: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Errorf("nil Sync: %v", err)
	}
	if err := w.Compact(nil); err != nil {
		t.Errorf("nil Compact: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	w, _, err := OpenWAL(dir, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	rec := walRecord(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
