package jobs

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prochecker/internal/obs"
)

// waitForSealed polls until the recorder has sealed n flights (the
// recorder goroutine consumes the bus asynchronously).
func waitForSealed(t *testing.T, reg *obs.Registry, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter("flight.sealed").Value() >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("recorder never sealed %d flight(s) (sealed=%d)",
		n, reg.Counter("flight.sealed").Value())
}

func TestFlightRecorderSealAndReplay(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	bus := obs.NewBus(64, reg)
	fr, err := NewFlightRecorder(dir, bus, reg)
	if err != nil {
		t.Fatalf("NewFlightRecorder: %v", err)
	}
	defer fr.Close()

	bus.Publish(obs.BusEvent{Type: "job", Scope: "j-0001", Name: "queued"})
	bus.Publish(obs.BusEvent{Type: "job", Scope: "j-0001", Name: "running"})
	bus.Publish(obs.BusEvent{Type: "progress", Scope: "j-0001", Name: "mc.level", Value: 3})
	bus.Publish(obs.BusEvent{Type: "span_end", Scope: "j-0001", Name: "job.run", DurMS: 12.5})
	bus.Publish(obs.BusEvent{Type: "job", Scope: "other", Name: "running"}) // not a job scope
	bus.Publish(obs.BusEvent{Type: "job", Scope: "j-0001", Name: "done"})
	waitForSealed(t, reg, 1)

	events, err := ReadFlight(FlightPath(dir, "j-0001"))
	if err != nil {
		t.Fatalf("ReadFlight: %v", err)
	}
	if len(events) != 5 {
		t.Fatalf("replayed %d events, want 5", len(events))
	}
	wantNames := []string{"queued", "running", "mc.level", "job.run", "done"}
	for i, ev := range events {
		if ev.Scope != "j-0001" {
			t.Errorf("event %d has scope %q, want j-0001", i, ev.Scope)
		}
		if ev.Name != wantNames[i] {
			t.Errorf("event %d is %q, want %q (bus order must be preserved)", i, ev.Name, wantNames[i])
		}
		if i > 0 && ev.Seq <= events[i-1].Seq {
			t.Errorf("event %d seq %d not increasing after %d", i, ev.Seq, events[i-1].Seq)
		}
	}
	if got := reg.Counter("flight.events_recorded").Value(); got != 5 {
		t.Errorf("flight.events_recorded = %d, want 5", got)
	}
	if _, err := os.Stat(FlightPath(dir, "other")); !os.IsNotExist(err) {
		t.Errorf("non-job scope grew a flight file (stat err %v)", err)
	}
}

func TestFlightRecorderSeparatesJobs(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	bus := obs.NewBus(64, reg)
	fr, err := NewFlightRecorder(dir, bus, reg)
	if err != nil {
		t.Fatalf("NewFlightRecorder: %v", err)
	}
	defer fr.Close()

	for _, id := range []string{"j-a", "j-b"} {
		bus.Publish(obs.BusEvent{Type: "job", Scope: id, Name: "running"})
		bus.Publish(obs.BusEvent{Type: "job", Scope: id, Name: "done"})
	}
	waitForSealed(t, reg, 2)

	for _, id := range []string{"j-a", "j-b"} {
		events, err := ReadFlight(FlightPath(dir, id))
		if err != nil {
			t.Fatalf("ReadFlight(%s): %v", id, err)
		}
		if len(events) != 2 {
			t.Fatalf("flight %s has %d events, want 2", id, len(events))
		}
		for _, ev := range events {
			if ev.Scope != id {
				t.Fatalf("flight %s contains foreign event scope %q", id, ev.Scope)
			}
		}
	}
}

func TestFlightRecorderCloseDrainsBacklog(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	bus := obs.NewBus(64, reg)
	fr, err := NewFlightRecorder(dir, bus, reg)
	if err != nil {
		t.Fatalf("NewFlightRecorder: %v", err)
	}
	// Publish and immediately close: the terminal event may still be in
	// the ring, unconsumed — Close must drain it and seal the flight.
	bus.Publish(obs.BusEvent{Type: "job", Scope: "j-lastgasp", Name: "running"})
	bus.Publish(obs.BusEvent{Type: "job", Scope: "j-lastgasp", Name: "failed"})
	fr.Close()
	fr.Close() // idempotent

	events, err := ReadFlight(FlightPath(dir, "j-lastgasp"))
	if err != nil {
		t.Fatalf("ReadFlight after Close: %v", err)
	}
	if len(events) != 2 || events[1].Name != "failed" {
		t.Fatalf("drained flight = %+v, want running+failed", events)
	}
}

func TestReadFlightDetectsTruncation(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	bus := obs.NewBus(64, reg)
	fr, err := NewFlightRecorder(dir, bus, reg)
	if err != nil {
		t.Fatalf("NewFlightRecorder: %v", err)
	}
	// No terminal event: the job "crashed" mid-run. Close flushes the
	// partial recording without a footer.
	bus.Publish(obs.BusEvent{Type: "job", Scope: "j-crash", Name: "running"})
	bus.Publish(obs.BusEvent{Type: "progress", Scope: "j-crash", Name: "mc.level", Value: 1})
	fr.Close()

	_, err = ReadFlight(FlightPath(dir, "j-crash"))
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("ReadFlight on unsealed file: %v, want truncation error", err)
	}
}

func TestReadFlightDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	bus := obs.NewBus(64, reg)
	fr, err := NewFlightRecorder(dir, bus, reg)
	if err != nil {
		t.Fatalf("NewFlightRecorder: %v", err)
	}
	defer fr.Close()
	bus.Publish(obs.BusEvent{Type: "job", Scope: "j-rot", Name: "running"})
	bus.Publish(obs.BusEvent{Type: "job", Scope: "j-rot", Name: "done"})
	waitForSealed(t, reg, 1)

	path := FlightPath(dir, "j-rot")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading sealed flight: %v", err)
	}
	// Flip one byte inside the first event line (bit rot).
	idx := 20
	corrupted := append([]byte(nil), data...)
	corrupted[idx] ^= 0x01
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatalf("writing corrupted flight: %v", err)
	}

	_, err = ReadFlight(path)
	if err == nil || !strings.Contains(err.Error(), "crc mismatch") {
		t.Fatalf("ReadFlight on corrupted file: %v, want crc mismatch", err)
	}
}

func TestReadFlightMissingAndEmpty(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadFlight(filepath.Join(dir, "nope.jsonl")); err == nil {
		t.Fatal("ReadFlight on missing file succeeded")
	}
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFlight(empty); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("ReadFlight on empty file: %v, want empty-recording error", err)
	}
}

// TestServiceRecordsFlights exercises the wired path: a real Service
// with Events+FlightDir configured records and seals its jobs' flights.
func TestServiceRecordsFlights(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	bus := obs.NewBus(256, reg)
	fr := &fakeRunner{}
	svc, err := New(Config{
		Runner:    fr.run,
		Workers:   2,
		Metrics:   reg,
		Events:    bus,
		FlightDir: filepath.Join(dir, "flight"),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	job, err := svc.Submit(Spec{Impl: "srsLTE", Properties: []string{"S06"}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, svc, job.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := svc.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	events, err := ReadFlight(FlightPath(filepath.Join(dir, "flight"), job.ID))
	if err != nil {
		t.Fatalf("ReadFlight: %v", err)
	}
	var sawRunning, sawTerminal bool
	for _, ev := range events {
		if ev.Type == "job" && ev.Name == string(StateRunning) {
			sawRunning = true
		}
		if ev.Type == "job" && State(ev.Name).Terminal() {
			sawTerminal = true
		}
	}
	if !sawRunning || !sawTerminal {
		t.Fatalf("flight missing lifecycle (running=%v terminal=%v): %+v", sawRunning, sawTerminal, events)
	}
}
