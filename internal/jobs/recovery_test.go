package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prochecker/internal/obs"
	"prochecker/internal/resilience"
)

// flakyRunner fails each key a configured number of times before
// succeeding, so retry tests control exactly which attempt recovers.
type flakyRunner struct {
	mu       sync.Mutex
	failures int   // attempts to fail per key before succeeding
	err      error // error returned by failing attempts
	attempts map[string]int
}

func (f *flakyRunner) run(_ context.Context, spec Spec) (*Result, error) {
	f.mu.Lock()
	if f.attempts == nil {
		f.attempts = make(map[string]int)
	}
	f.attempts[spec.Key()]++
	n := f.attempts[spec.Key()]
	f.mu.Unlock()
	if n <= f.failures {
		return nil, fmt.Errorf("attempt %d: %w", n, f.err)
	}
	return (&fakeRunner{}).run(context.Background(), spec)
}

func (f *flakyRunner) count(key string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.attempts[key]
}

func retryPolicy(maxAttempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: maxAttempts, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Seed: 42}
}

func TestRetryTransientThenSucceeds(t *testing.T) {
	fr := &flakyRunner{failures: 2, err: resilience.ErrFaultInjected}
	reg := obs.NewRegistry()
	s, err := New(Config{Runner: fr.run, Workers: 1, Metrics: reg, Retry: retryPolicy(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	j, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	j = waitTerminal(t, s, j.ID)
	if j.State != StateDone {
		t.Fatalf("state = %s (%s), want done", j.State, j.Error)
	}
	if j.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", j.Attempts)
	}
	if j.Result == nil {
		t.Error("done job carries no result")
	}
	if got := reg.Counter("jobs.retries").Value(); got != 2 {
		t.Errorf("jobs.retries = %d, want 2", got)
	}
}

func TestRetryQuarantinesPoisonJob(t *testing.T) {
	fr := &flakyRunner{failures: 99, err: resilience.ErrFaultInjected}
	reg := obs.NewRegistry()
	s, err := New(Config{Runner: fr.run, Workers: 1, Metrics: reg, Retry: retryPolicy(2)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	spec := Spec{Impl: "srsLTE", Seed: 1}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j = waitTerminal(t, s, j.ID)
	if j.State != StateQuarantined {
		t.Fatalf("state = %s, want quarantined", j.State)
	}
	if j.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", j.Attempts)
	}
	if j.Class != resilience.KindRetryExhausted.String() {
		t.Errorf("class = %q, want retry-exhausted", j.Class)
	}
	if j.ExitCode != resilience.ExitRetryExhausted {
		t.Errorf("exit code = %d, want %d", j.ExitCode, resilience.ExitRetryExhausted)
	}
	if got := fr.count(spec.Key()); got != 2 {
		t.Errorf("runner executed %d attempts, want 2", got)
	}
	if got := reg.Counter("jobs.quarantined").Value(); got != 1 {
		t.Errorf("jobs.quarantined = %d, want 1", got)
	}
	// The quarantine class folds into the campaign exit code.
	if got := WorstExitCode([]Job{j}); got != resilience.ExitRetryExhausted {
		t.Errorf("WorstExitCode = %d, want %d", got, resilience.ExitRetryExhausted)
	}
}

func TestRetryFailsFastOnDeterministicFailure(t *testing.T) {
	fr := &flakyRunner{failures: 99, err: resilience.ErrModelLint}
	s, err := New(Config{Runner: fr.run, Workers: 1, Retry: retryPolicy(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	spec := Spec{Impl: "srsLTE", Seed: 1}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j = waitTerminal(t, s, j.ID)
	if j.State != StateFailed {
		t.Fatalf("state = %s, want failed (deterministic failures never retry)", j.State)
	}
	if j.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", j.Attempts)
	}
	if j.Class != resilience.KindModelLint.String() {
		t.Errorf("class = %q, want model-lint", j.Class)
	}
	if got := fr.count(spec.Key()); got != 1 {
		t.Errorf("runner executed %d attempts, want 1", got)
	}
}

func TestCancelDuringRetryBackoff(t *testing.T) {
	fr := &flakyRunner{failures: 99, err: resilience.ErrFaultInjected}
	s, err := New(Config{Runner: fr.run, Workers: 1,
		Retry: RetryPolicy{MaxAttempts: 3, Backoff: 300 * time.Millisecond, MaxBackoff: time.Second, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	j, err := s.Submit(Spec{Impl: "srsLTE", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first attempt to fail and the job to re-enter the
	// queue awaiting its backoff.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur, _ := s.Get(j.ID)
		if cur.Attempts == 1 && cur.State == StateQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never entered retry backoff: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	got := waitTerminal(t, s, j.ID)
	if got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got.State)
	}
	// The pending backoff timer must not resurrect the job.
	time.Sleep(500 * time.Millisecond)
	if cur, _ := s.Get(j.ID); cur.State != StateCancelled || cur.Attempts != 1 {
		t.Fatalf("backoff timer resurrected a cancelled job: %+v", cur)
	}
}

// seedWAL writes records straight to a WAL dir, standing in for the
// journal a crashed service left behind.
func seedWAL(t *testing.T, dir string, recs []Record) {
	t.Helper()
	w, replayed, err := OpenWAL(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 0 {
		t.Fatalf("seed dir not empty: %d records", len(replayed))
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryReplaysEveryOrdering(t *testing.T) {
	walDir := t.TempDir()
	storeDir := t.TempDir()
	store, err := OpenStore(storeDir, 16)
	if err != nil {
		t.Fatal(err)
	}

	specs := map[string]Spec{
		"j-0001": {Impl: "queued-only", Seed: 1},
		"j-0002": {Impl: "was-running", Seed: 2},
		"j-0003": {Impl: "done-adopted", Seed: 3},
		"j-0004": {Impl: "done-evicted", Seed: 4},
		"j-0005": {Impl: "was-failed", Seed: 5},
		"j-0006": {Impl: "was-cancelled", Seed: 6},
	}
	// j-0003 finished before the crash and its result survives in the
	// content-addressed store; j-0004 finished too but its entry is gone.
	adoptedRes, err := (&fakeRunner{}).run(context.Background(), specs["j-0003"])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put(adoptedRes); err != nil {
		t.Fatal(err)
	}

	rec := func(typ RecordType, id string, mut func(*Record)) Record {
		spec := specs[id]
		r := Record{Type: typ, ID: id, At: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
		if typ == RecSubmitted {
			r.Key, r.Spec = spec.Key(), &spec
		}
		if mut != nil {
			mut(&r)
		}
		return r
	}
	seedWAL(t, walDir, []Record{
		rec(RecSubmitted, "j-0001", nil),
		rec(RecSubmitted, "j-0002", nil),
		rec(RecSubmitted, "j-0003", nil),
		rec(RecSubmitted, "j-0004", nil),
		rec(RecSubmitted, "j-0005", nil),
		rec(RecSubmitted, "j-0006", nil),
		rec(RecStarted, "j-0002", func(r *Record) { r.Attempt = 1 }),
		rec(RecStarted, "j-0003", func(r *Record) { r.Attempt = 1 }),
		rec(RecTerminal, "j-0003", func(r *Record) { r.State = StateDone }),
		rec(RecStarted, "j-0004", func(r *Record) { r.Attempt = 1 }),
		rec(RecTerminal, "j-0004", func(r *Record) { r.State = StateDone }),
		rec(RecStarted, "j-0005", func(r *Record) {
			r.Attempt = 1
		}),
		rec(RecTerminal, "j-0005", func(r *Record) {
			r.State, r.Class, r.Error = StateFailed, "model-lint", "model lint gate failed: 2 errors"
		}),
		rec(RecTerminal, "j-0006", func(r *Record) {
			r.State, r.Class, r.Error = StateCancelled, "cancelled", "jobs: j-0006 cancelled while queued: run cancelled"
		}),
		{Type: RecMeta, ID: "c-0001", Meta: json.RawMessage(`{"job_ids":["j-0001","j-0002"]}`)},
	})

	fr := &fakeRunner{}
	reg := obs.NewRegistry()
	s, err := New(Config{Runner: fr.run, Workers: 1, Store: store, WALDir: walDir, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stats := s.Recovery()
	if stats.Adopted != 1 || stats.Requeued != 3 || stats.Terminal != 2 {
		t.Fatalf("recovery stats = %+v, want adopted 1, requeued 3, terminal 2", stats)
	}

	for id := range specs {
		waitTerminal(t, s, id)
	}
	// Requeued jobs re-ran in original submission order (one worker).
	if got := fr.order(); len(got) != 3 || got[0] != "queued-only" || got[1] != "was-running" || got[2] != "done-evicted" {
		t.Fatalf("recomputation order = %v, want [queued-only was-running done-evicted]", got)
	}

	assert := func(id string, state State, class string, recovered bool) {
		t.Helper()
		j, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s lost in recovery", id)
		}
		if j.State != state || j.Recovered != recovered {
			t.Errorf("%s: state=%s recovered=%v, want state=%s recovered=%v", id, j.State, j.Recovered, state, recovered)
		}
		if class != "" && j.Class != class {
			t.Errorf("%s: class=%q, want %q", id, j.Class, class)
		}
	}
	assert("j-0001", StateDone, "none", true)
	// The interrupted attempt of j-0002 was not burned: one fresh run.
	assert("j-0002", StateDone, "none", true)
	if j, _ := s.Get("j-0002"); j.Attempts != 1 {
		t.Errorf("j-0002 attempts = %d, want 1 (interrupted attempt not burned)", j.Attempts)
	}
	assert("j-0003", StateDone, "none", false)
	if j, _ := s.Get("j-0003"); j.Result == nil {
		t.Error("j-0003 adopted no result from the store")
	}
	assert("j-0004", StateDone, "none", true)
	assert("j-0005", StateFailed, "model-lint", false)
	if j, _ := s.Get("j-0005"); j.ExitCode != resilience.ExitModelLint || j.Error != "model lint gate failed: 2 errors" {
		t.Errorf("j-0005 failed to restore class/exit/message: %+v", j)
	}
	assert("j-0006", StateCancelled, "cancelled", false)

	metas := s.Metas()
	if len(metas) != 1 || metas[0].ID != "c-0001" {
		t.Fatalf("metas = %+v, want the one campaign record", metas)
	}

	// New submissions continue the ID sequence instead of colliding.
	j, err := s.Submit(Spec{Impl: "fresh", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "j-0007" {
		t.Errorf("post-recovery ID = %s, want j-0007", j.ID)
	}
}

func TestDrainCheckpointsWALAndResumeAdoptsAll(t *testing.T) {
	walDir := t.TempDir()
	storeDir := t.TempDir()

	open := func(fr *fakeRunner) *Service {
		store, err := OpenStore(storeDir, 16)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Runner: fr.run, Workers: 2, Store: store, WALDir: walDir})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s1 := open(&fakeRunner{})
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := s1.Submit(Spec{Impl: fmt.Sprintf("impl-%d", i), Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	for _, id := range ids {
		waitTerminal(t, s1, id)
	}
	if err := s1.LogMeta("c-0001", json.RawMessage(`{"job_ids":["j-0001","j-0002","j-0003"]}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Drain checkpointed: the WAL is one compacted segment.
	segs, _ := filepath.Glob(filepath.Join(walDir, "wal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("drain left %d wal segments, want 1 compacted", len(segs))
	}

	fr2 := &fakeRunner{}
	s2 := open(fr2)
	defer s2.Close()
	stats := s2.Recovery()
	if stats.Adopted != 3 || stats.Requeued != 0 {
		t.Fatalf("resume stats = %+v, want 3 adopted, 0 requeued", stats)
	}
	if got := fr2.order(); len(got) != 0 {
		t.Fatalf("resume recomputed %v, want nothing (all adopted)", got)
	}
	for _, id := range ids {
		j, ok := s2.Get(id)
		if !ok || j.State != StateDone || j.Result == nil {
			t.Fatalf("job %s not restored done-with-result: ok=%v %+v", id, ok, j)
		}
	}
	if metas := s2.Metas(); len(metas) != 1 || metas[0].ID != "c-0001" {
		t.Fatalf("metas not restored: %+v", metas)
	}
}

func TestDrainRacesSubmitAndCompletion(t *testing.T) {
	fr := &fakeRunner{}
	s, err := New(Config{Runner: fr.run, Workers: 4, Queue: 256, WALDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}

	var accepted, rejected atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 25; i++ {
				_, err := s.Submit(Spec{Impl: fmt.Sprintf("impl-%d-%d", g, i), Seed: int64(i)})
				switch {
				case err == nil:
					accepted.Add(1)
				case errors.Is(err, ErrDraining) || errors.Is(err, ErrQueueFull):
					rejected.Add(1)
				default:
					t.Errorf("submit: %v", err)
				}
			}
		}(g)
	}
	close(start)
	time.Sleep(time.Millisecond) // let some submissions land first
	if _, err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()

	// Every accepted job reached a terminal state; nothing is stuck.
	open := 0
	for _, j := range s.List() {
		if !j.Terminal() {
			open++
		}
	}
	if open != 0 {
		t.Fatalf("%d jobs still open after drain", open)
	}
	if got := int64(len(s.List())); got != accepted.Load() {
		t.Fatalf("job table has %d entries, accepted %d", got, accepted.Load())
	}
	// A post-drain submission is rejected.
	if _, err := s.Submit(Spec{Impl: "late", Seed: 1}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
}

func TestStoreQuarantinesTornEntryAndRecomputes(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir, 16)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Impl: "srsLTE", Seed: 1}
	res, err := (&fakeRunner{}).run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put(res); err != nil {
		t.Fatal(err)
	}

	// Tear the entry: truncate it mid-JSON, as a crash mid-write (or
	// disk corruption) would.
	path := filepath.Join(dir, spec.Key()+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, ok := store.Get(spec.Key()); ok {
		t.Fatal("torn store entry was served")
	}
	if got := store.Quarantined(); got != 1 {
		t.Errorf("Quarantined() = %d, want 1", got)
	}
	qpath := filepath.Join(dir, "quarantine", spec.Key()+".json")
	if _, err := os.Stat(qpath); err != nil {
		t.Errorf("torn entry not preserved in quarantine/: %v", err)
	}

	// A resubmission recomputes instead of serving the torn bytes.
	fr := &fakeRunner{}
	s, err := New(Config{Runner: fr.run, Workers: 1, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	j = waitTerminal(t, s, j.ID)
	if j.State != StateDone || j.CacheHit {
		t.Fatalf("resubmission state=%s cacheHit=%v, want recomputed done", j.State, j.CacheHit)
	}
	if got := fr.order(); len(got) != 1 {
		t.Fatalf("runner ran %d times, want 1 recomputation", len(got))
	}
	// The recomputed result is stored again and now served as a hit.
	if _, _, ok := store.Get(spec.Key()); !ok {
		t.Fatal("recomputed result missing from store")
	}
}
