package jobs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"prochecker/internal/obs"
)

// FlightRecorder tails the event bus and demultiplexes job-scoped
// events into one JSONL file per job — the job's "flight": lifecycle
// transitions, every span the runner opened and closed, and per-level
// exploration progress, in bus order. When the job reaches a terminal
// state the file is sealed with a CRC32 footer line, so a post-mortem
// (why was j-0042 quarantined?) replays the recording instead of
// re-running the job. Files for jobs that never terminate (process
// crash) are left unsealed; ReadFlight reports them as truncated.
type FlightRecorder struct {
	dir string
	reg *obs.Registry
	sub *obs.Subscription

	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once

	open map[string]*flightFile // job id -> in-progress recording
}

// flightFile is one job's open recording.
type flightFile struct {
	f      *os.File
	w      *bufio.Writer
	crc    uint32 // running CRC32 over every event line written
	events int
}

// flightFooter is the sealing line of a completed flight: Events
// counts the event lines above it and CRC is the IEEE CRC32 of their
// bytes (newlines included).
type flightFooter struct {
	Type   string `json:"type"`
	Events int    `json:"events"`
	CRC    string `json:"crc"`
}

// flightFooterType tags the footer line.
const flightFooterType = "flight_end"

// NewFlightRecorder starts recording job-scoped bus events (scopes of
// the service's "j-NNNN" shape) under dir, one file per job. Only
// events published after the recorder starts are recorded.
func NewFlightRecorder(dir string, bus *obs.Bus, reg *obs.Registry) (*FlightRecorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating flight dir: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	fr := &FlightRecorder{
		dir:    dir,
		reg:    reg,
		sub:    bus.Subscribe(bus.Seq() + 1),
		cancel: cancel,
		done:   make(chan struct{}),
		open:   make(map[string]*flightFile),
	}
	go fr.loop(ctx)
	return fr, nil
}

// FlightPath is the recording location for one job under dir.
func FlightPath(dir, jobID string) string {
	return filepath.Join(dir, jobID+".jsonl")
}

// loop consumes the bus until cancelled, then drains whatever the
// ring still holds so terminal events published just before Close
// still seal their flights.
func (fr *FlightRecorder) loop(ctx context.Context) {
	defer close(fr.done)
	for {
		ev, err := fr.sub.Next(ctx)
		if err != nil {
			break
		}
		fr.record(ev)
	}
	for {
		ev, ok := fr.sub.TryNext()
		if !ok {
			break
		}
		fr.record(ev)
	}
	fr.sub.Close()
	for id, ff := range fr.open {
		// Unsealed: the job never terminated. Flush what we have; the
		// missing footer marks the recording truncated.
		ff.w.Flush() //nolint:errcheck // best effort at shutdown
		ff.f.Close() //nolint:errcheck // best effort at shutdown
		delete(fr.open, id)
	}
}

// record routes one bus event into its job's file. Only the recorder
// goroutine touches fr.open, so no locking is needed.
func (fr *FlightRecorder) record(ev obs.BusEvent) {
	scope := ev.Scope
	if !strings.HasPrefix(scope, "j-") {
		return
	}
	ff := fr.open[scope]
	if ff == nil {
		f, err := os.OpenFile(FlightPath(fr.dir, scope), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			fr.reg.Counter("flight.write_errors").Inc()
			return
		}
		ff = &flightFile{f: f, w: bufio.NewWriter(f)}
		fr.open[scope] = ff
	}
	line, err := json.Marshal(ev)
	if err != nil {
		fr.reg.Counter("flight.write_errors").Inc()
		return
	}
	line = append(line, '\n')
	if _, err := ff.w.Write(line); err != nil {
		fr.reg.Counter("flight.write_errors").Inc()
		return
	}
	ff.crc = crc32.Update(ff.crc, crc32.IEEETable, line)
	ff.events++
	fr.reg.Counter("flight.events_recorded").Inc()

	if ev.Type == "job" && State(ev.Name).Terminal() {
		fr.seal(scope, ff)
	}
}

// seal writes the CRC footer and closes the flight.
func (fr *FlightRecorder) seal(id string, ff *flightFile) {
	delete(fr.open, id)
	footer, err := json.Marshal(flightFooter{
		Type:   flightFooterType,
		Events: ff.events,
		CRC:    fmt.Sprintf("%08x", ff.crc),
	})
	if err == nil {
		_, err = ff.w.Write(append(footer, '\n'))
	}
	if err == nil {
		err = ff.w.Flush()
	}
	if cerr := ff.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fr.reg.Counter("flight.write_errors").Inc()
		return
	}
	fr.reg.Counter("flight.sealed").Inc()
}

// Close stops the recorder after draining the bus backlog, sealing
// every flight whose terminal event was already published. Nil-safe
// and idempotent.
func (fr *FlightRecorder) Close() {
	if fr == nil {
		return
	}
	fr.once.Do(func() {
		fr.cancel()
		<-fr.done
	})
}

// ReadFlight loads one sealed recording, verifying its footer: the
// event lines come back in bus order, and a missing or mismatched
// footer (truncated recording, bit rot) is an error.
func ReadFlight(path string) ([]obs.BusEvent, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("jobs: reading flight: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// Trailing newline yields one empty trailing element.
	if n := len(lines); n > 0 && len(lines[n-1]) == 0 {
		lines = lines[:n-1]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("jobs: flight %s: empty recording", path)
	}
	var footer flightFooter
	last := lines[len(lines)-1]
	if json.Unmarshal(last, &footer) != nil || footer.Type != flightFooterType {
		return nil, fmt.Errorf("jobs: flight %s: missing footer (truncated recording)", path)
	}
	body := data[:len(data)-len(last)-1]
	if sum := fmt.Sprintf("%08x", crc32.ChecksumIEEE(body)); sum != footer.CRC {
		return nil, fmt.Errorf("jobs: flight %s: crc mismatch (footer %s, computed %s)", path, footer.CRC, sum)
	}
	events := make([]obs.BusEvent, 0, len(lines)-1)
	for i, line := range lines[:len(lines)-1] {
		var ev obs.BusEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("jobs: flight %s: line %d: %w", path, i+1, err)
		}
		events = append(events, ev)
	}
	if len(events) != footer.Events {
		return nil, fmt.Errorf("jobs: flight %s: footer counts %d events, file has %d", path, footer.Events, len(events))
	}
	return events, nil
}
