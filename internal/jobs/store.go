package jobs

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// Store is a content-addressed result store: one JSON file per result,
// named by the spec's SHA-256 key, bounded by an in-memory LRU that
// evicts the least-recently-used entry (and its file) past MaxEntries.
// It is safe for concurrent use.
type Store struct {
	dir string
	max int

	mu    sync.Mutex
	lru   *list.List               // front = least recently used
	index map[string]*list.Element // key -> element whose Value is the key

	evictions   atomic.Int64
	quarantined atomic.Int64
}

// DefaultStoreEntries bounds a store when the caller passes
// maxEntries <= 0.
const DefaultStoreEntries = 512

// keyFile matches the file names the store owns: 64 hex chars + .json.
var keyFile = regexp.MustCompile(`^[0-9a-f]{64}\.json$`)

// OpenStore opens (creating if needed) a result store rooted at dir.
// Existing result files are adopted into the LRU ordered by modification
// time, so a restarted service keeps its cache warm and its eviction
// order sensible.
func OpenStore(dir string, maxEntries int) (*Store, error) {
	if maxEntries <= 0 {
		maxEntries = DefaultStoreEntries
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating store dir: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: reading store dir: %w", err)
	}
	type existing struct {
		key   string
		mtime int64
	}
	var found []existing
	for _, e := range entries {
		if e.IsDir() || !keyFile.MatchString(e.Name()) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		found = append(found, existing{key: e.Name()[:64], mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(found, func(i, j int) bool { return found[i].mtime < found[j].mtime })

	s := &Store{dir: dir, max: maxEntries, lru: list.New(), index: make(map[string]*list.Element)}
	for _, f := range found {
		s.index[f.key] = s.lru.PushBack(f.key)
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

func (s *Store) path(key string) string { return filepath.Join(s.dir, key+".json") }

// Get looks up a stored result by key, returning the exact stored bytes
// alongside the decoded result and bumping the entry's recency. A
// missing or unreadable entry reports ok=false (a corrupt file is
// dropped from the index so a fresh Put can replace it).
func (s *Store) Get(key string) ([]byte, *Result, bool) {
	if s == nil {
		return nil, nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.index[key]
	if !ok {
		return nil, nil, false
	}
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		s.quarantineLocked(key, el)
		return nil, nil, false
	}
	var res Result
	if err := json.Unmarshal(b, &res); err != nil || res.SchemaVersion != ResultSchemaVersion {
		s.quarantineLocked(key, el)
		return nil, nil, false
	}
	s.lru.MoveToBack(el)
	return b, &res, true
}

// Put persists the result under res.Key, returning the canonical bytes
// written. An entry that already exists keeps its original file (the
// first write wins — contents are deterministic per key, so this only
// skips redundant IO) and is bumped to most recent.
func (s *Store) Put(res *Result) ([]byte, error) {
	if s == nil {
		return res.MarshalCanonical()
	}
	b, err := res.MarshalCanonical()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.index[res.Key]; ok {
		s.lru.MoveToBack(el)
		return b, nil
	}
	// Atomic publish: write a temp file in the same directory, then
	// rename over the final name, so readers never observe a torn file.
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return nil, fmt.Errorf("jobs: writing result: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("jobs: writing result: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("jobs: writing result: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(res.Key)); err != nil {
		os.Remove(tmp.Name())
		return nil, fmt.Errorf("jobs: publishing result: %w", err)
	}
	s.index[res.Key] = s.lru.PushBack(res.Key)
	s.evictLocked()
	return b, nil
}

// Len reports how many results the store currently holds.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Evictions reports how many entries the LRU bound has evicted.
func (s *Store) Evictions() int64 {
	if s == nil {
		return 0
	}
	return s.evictions.Load()
}

// Quarantined reports how many corrupt (torn/truncated/stale-schema)
// entries Get has moved aside for inspection instead of serving.
func (s *Store) Quarantined() int64 {
	if s == nil {
		return 0
	}
	return s.quarantined.Load()
}

// quarantineLocked moves a corrupt entry's file into the quarantine/
// subdirectory (keeping the evidence for debugging) and removes it from
// the index so a fresh Put — or a recomputation — can replace it.
func (s *Store) quarantineLocked(key string, el *list.Element) {
	s.lru.Remove(el)
	delete(s.index, key)
	qdir := filepath.Join(s.dir, "quarantine")
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(s.path(key), filepath.Join(qdir, key+".json")) == nil {
			s.quarantined.Add(1)
			return
		}
	}
	os.Remove(s.path(key))
	s.quarantined.Add(1)
}

// evictLocked trims the store to its bound, oldest first.
func (s *Store) evictLocked() {
	for s.lru.Len() > s.max {
		el := s.lru.Front()
		key := el.Value.(string)
		s.dropLocked(key, el)
		s.evictions.Add(1)
	}
}

// dropLocked removes one entry and its file.
func (s *Store) dropLocked(key string, el *list.Element) {
	s.lru.Remove(el)
	delete(s.index, key)
	os.Remove(s.path(key))
}
