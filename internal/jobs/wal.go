package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"prochecker/internal/obs"
)

// RecordType names one WAL record kind.
type RecordType string

// The WAL record vocabulary. A job's lifecycle is journalled as one
// RecSubmitted, zero or more RecStarted (one per attempt), and at most
// one RecTerminal; RecMeta carries opaque payloads for the layers above
// the job service (the HTTP server persists campaign membership and
// tenant quota balances with it). RecLease journals distributed worker
// assignments — grant, renew, release — so crash recovery spans remote
// attempts: a replayed unexpired lease keeps its job running instead of
// requeueing it under the worker's feet.
const (
	RecSubmitted RecordType = "submitted"
	RecStarted   RecordType = "started"
	RecTerminal  RecordType = "terminal"
	RecMeta      RecordType = "meta"
	RecLease     RecordType = "lease"
)

// Lease-record actions (Record.Action when Type is RecLease).
const (
	// LeaseGrant assigns a queued job to a worker under a TTL.
	LeaseGrant = "grant"
	// LeaseRenew extends a held lease's expiry (heartbeat).
	LeaseRenew = "renew"
	// LeaseRelease ends a lease without implying the job's outcome:
	// result uploaded, failure reported, expiry, or abandonment.
	LeaseRelease = "release"
)

// Record is one WAL entry. Which fields are meaningful depends on Type:
// submitted carries the spec and key, started the attempt number,
// terminal the final state with its resilience class, meta an opaque
// payload, and lease the lease ID, worker, action and expiry. At is
// informational wall time; replay never orders by it (append order is
// the order of record) — except that a replayed lease grant/renew is
// live only while its Expiry is still in the future.
type Record struct {
	Type     RecordType      `json:"type"`
	ID       string          `json:"id,omitempty"`
	Key      string          `json:"key,omitempty"`
	Spec     *Spec           `json:"spec,omitempty"`
	Attempt  int             `json:"attempt,omitempty"`
	State    State           `json:"state,omitempty"`
	Class    string          `json:"class,omitempty"`
	Error    string          `json:"error,omitempty"`
	CacheHit bool            `json:"cache_hit,omitempty"`
	Meta     json.RawMessage `json:"meta,omitempty"`
	Lease    string          `json:"lease,omitempty"`
	Worker   string          `json:"worker,omitempty"`
	Action   string          `json:"action,omitempty"`
	Expiry   time.Time       `json:"expiry,omitempty"`
	At       time.Time       `json:"at,omitempty"`
}

// DefaultSegmentBytes rotates a WAL segment once it grows past this
// size; compaction then reclaims the closed segments.
const DefaultSegmentBytes = 1 << 20

// walSegment matches the files a WAL owns: wal-<seq>.log.
var walSegment = regexp.MustCompile(`^wal-(\d{6})\.log$`)

// WAL is an append-only, checksummed, segment-rotated journal of job
// lifecycle records. Appends are flushed to the OS immediately (a
// SIGKILLed process loses nothing already appended) and fsynced in
// batches by a background group-commit goroutine, so a burst of commits
// costs one disk sync. Safe for concurrent use; nil-safe like Store, so
// a service without a WAL calls through no-ops.
type WAL struct {
	dir      string
	segBytes int64
	reg      *obs.Registry

	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	seg    int   // current segment sequence
	size   int64 // bytes in the current segment
	dirty  bool  // appended since the last fsync
	closed bool

	syncCh   chan struct{} // group-commit wakeups (buffered, coalescing)
	syncDone chan struct{}
}

// OpenWAL opens (creating if needed) the WAL rooted at dir, replays
// every intact record from its segments in order, and positions the log
// for appending. A torn tail — a partially-written final record from a
// crash mid-append — is tolerated: replay stops at the last intact
// record and the tail is truncated away so fresh appends never
// interleave with garbage. Records failing their checksum likewise end
// that segment's replay (counted in wal.replay_skipped).
func OpenWAL(dir string, reg *obs.Registry) (*WAL, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobs: creating wal dir: %w", err)
	}
	w := &WAL{
		dir:      dir,
		segBytes: DefaultSegmentBytes,
		reg:      reg,
		syncCh:   make(chan struct{}, 1),
		syncDone: make(chan struct{}),
	}
	segs, err := w.segments()
	if err != nil {
		return nil, nil, err
	}
	var recs []Record
	for _, seg := range segs {
		segRecs, err := w.replaySegment(seg)
		if err != nil {
			return nil, nil, err
		}
		recs = append(recs, segRecs...)
	}
	reg.Gauge("wal.records_replayed").Set(int64(len(recs)))

	// Append to the last segment, or start the first.
	w.seg = 1
	if len(segs) > 0 {
		w.seg = segs[len(segs)-1]
	}
	if err := w.openSegment(w.seg, os.O_APPEND); err != nil {
		return nil, nil, err
	}
	go w.syncLoop()
	return w, recs, nil
}

// segments lists the existing segment sequence numbers in order.
func (w *WAL) segments() ([]int, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: reading wal dir: %w", err)
	}
	var segs []int
	for _, e := range entries {
		m := walSegment.FindStringSubmatch(e.Name())
		if e.IsDir() || m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		segs = append(segs, n)
	}
	sort.Ints(segs)
	return segs, nil
}

func (w *WAL) segPath(seg int) string {
	return filepath.Join(w.dir, fmt.Sprintf("wal-%06d.log", seg))
}

// replaySegment reads one segment's intact prefix, truncating a torn or
// corrupt tail so the segment is clean for appending.
func (w *WAL) replaySegment(seg int) ([]Record, error) {
	f, err := os.Open(w.segPath(seg))
	if err != nil {
		return nil, fmt.Errorf("jobs: opening wal segment: %w", err)
	}
	defer f.Close()
	var recs []Record
	var good int64 // offset just past the last intact record
	rd := bufio.NewReader(f)
	for {
		line, rerr := rd.ReadBytes('\n')
		if len(line) > 0 {
			rec, ok := decodeRecord(line)
			if !ok {
				// Torn tail (no newline) or checksum/JSON damage: stop
				// replaying this segment and drop everything from here.
				w.reg.Counter("wal.replay_skipped").Inc()
				break
			}
			recs = append(recs, rec)
			good += int64(len(line))
		}
		if rerr != nil {
			if rerr != io.EOF {
				return nil, fmt.Errorf("jobs: reading wal segment: %w", rerr)
			}
			break
		}
	}
	if info, serr := f.Stat(); serr == nil && info.Size() > good {
		if terr := os.Truncate(w.segPath(seg), good); terr != nil {
			return nil, fmt.Errorf("jobs: truncating torn wal tail: %w", terr)
		}
		w.reg.Counter("wal.torn_tails").Inc()
	}
	return recs, nil
}

// encodeRecord renders one record line: an 8-hex-digit CRC32 of the
// JSON payload, a space, the payload, a newline.
func encodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("jobs: encoding wal record: %w", err)
	}
	line := make([]byte, 0, len(payload)+10)
	line = append(line, fmt.Sprintf("%08x ", crc32.ChecksumIEEE(payload))...)
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// decodeRecord parses one line back, verifying its checksum.
func decodeRecord(line []byte) (Record, bool) {
	if len(line) < 11 || line[len(line)-1] != '\n' || line[8] != ' ' {
		return Record{}, false
	}
	sum, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return Record{}, false
	}
	payload := line[9 : len(line)-1]
	if crc32.ChecksumIEEE(payload) != uint32(sum) {
		return Record{}, false
	}
	var rec Record
	if json.Unmarshal(payload, &rec) != nil {
		return Record{}, false
	}
	return rec, true
}

// openSegment (re)opens the current segment file and its writer.
// mode is os.O_APPEND to continue a segment or os.O_TRUNC to start it
// fresh.
func (w *WAL) openSegment(seg int, mode int) error {
	f, err := os.OpenFile(w.segPath(seg), os.O_CREATE|os.O_WRONLY|mode, 0o644)
	if err != nil {
		return fmt.Errorf("jobs: opening wal segment: %w", err)
	}
	size := int64(0)
	if mode == os.O_APPEND {
		if info, serr := f.Stat(); serr == nil {
			size = info.Size()
		}
	}
	w.f, w.w, w.seg, w.size = f, bufio.NewWriter(f), seg, size
	w.reg.Gauge("wal.segment").Set(int64(seg))
	return nil
}

// Append journals one record: written and flushed to the OS before
// returning (crash-of-this-process safe), fsynced shortly after by the
// batched group-commit loop (power-loss safe once Sync has run).
// Rotates to a new segment past the size bound.
func (w *WAL) Append(rec Record) error {
	if w == nil {
		return nil
	}
	line, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("jobs: append to closed wal")
	}
	if w.size > w.segBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := w.w.Write(line); err != nil {
		return fmt.Errorf("jobs: appending wal record: %w", err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("jobs: flushing wal: %w", err)
	}
	w.size += int64(len(line))
	w.dirty = true
	w.reg.Counter("wal.appends").Inc()
	w.reg.Counter("wal.bytes").Add(int64(len(line)))
	// Coalescing wakeup: if a sync is already pending, this commit rides
	// along with it — that is the fsync batching.
	select {
	case w.syncCh <- struct{}{}:
	default:
	}
	return nil
}

// rotateLocked closes the current segment and starts the next one.
func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("jobs: closing wal segment: %w", err)
	}
	w.reg.Counter("wal.rotations").Inc()
	return w.openSegment(w.seg+1, os.O_TRUNC)
}

// syncLoop is the group-commit goroutine: each wakeup fsyncs everything
// appended so far, so bursts of appends share one disk sync.
func (w *WAL) syncLoop() {
	defer close(w.syncDone)
	for range w.syncCh {
		w.mu.Lock()
		w.syncLocked() //nolint:errcheck // next Sync/Append surfaces it
		w.mu.Unlock()
	}
}

func (w *WAL) syncLocked() error {
	if !w.dirty || w.closed {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("jobs: flushing wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("jobs: syncing wal: %w", err)
	}
	w.dirty = false
	w.reg.Counter("wal.syncs").Inc()
	return nil
}

// Sync forces an immediate fsync of everything appended — the
// checkpoint barrier Drain uses before reporting a clean shutdown.
func (w *WAL) Sync() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// Compact rewrites the WAL as one fresh segment holding exactly the
// given records (the caller's condensed live state: one submitted /
// started / terminal triple per job instead of its full history) and
// removes every older segment. The new segment is published with a
// temp-write + rename so a crash mid-compaction leaves the old
// segments intact.
func (w *WAL) Compact(recs []Record) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("jobs: compacting closed wal")
	}
	tmp, err := os.CreateTemp(w.dir, "compact-*")
	if err != nil {
		return fmt.Errorf("jobs: compacting wal: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	var size int64
	for _, rec := range recs {
		line, err := encodeRecord(rec)
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		if _, err := bw.Write(line); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("jobs: compacting wal: %w", err)
		}
		size += int64(len(line))
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: compacting wal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: syncing compacted wal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: compacting wal: %w", err)
	}

	// Publish the compacted state as the next segment, then drop every
	// older one. Replay order stays correct: the new segment has the
	// highest sequence and is the only survivor.
	oldSegs, err := w.segments()
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	next := w.seg + 1
	if err := os.Rename(tmp.Name(), w.segPath(next)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("jobs: publishing compacted wal: %w", err)
	}
	w.f.Close() //nolint:errcheck // segment is superseded either way
	for _, seg := range oldSegs {
		os.Remove(w.segPath(seg))
	}
	if err := w.openSegment(next, os.O_APPEND); err != nil {
		return err
	}
	w.dirty = false
	w.reg.Counter("wal.compactions").Inc()
	return nil
}

// Close fsyncs and closes the WAL; further appends fail.
func (w *WAL) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	err := w.syncLocked()
	w.closed = true
	close(w.syncCh)
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("jobs: closing wal: %w", cerr)
	}
	w.mu.Unlock()
	<-w.syncDone
	return err
}
