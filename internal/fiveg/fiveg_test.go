package fiveg

import (
	"strings"
	"testing"

	"prochecker/internal/core/cegar"
	"prochecker/internal/cpv"
	"prochecker/internal/mc"
	"prochecker/internal/sqn"
	"prochecker/internal/ts"
)

func ruleContains(substrs ...string) func(string) bool {
	return func(name string) bool {
		for _, s := range substrs {
			if !strings.Contains(name, s) {
				return false
			}
		}
		return true
	}
}

func TestModelsWellFormed(t *testing.T) {
	for name, m := range map[string]interface{ Validate() []string }{
		"UE":  UE(),
		"AMF": AMF(),
	} {
		if problems := m.Validate(); len(problems) != 0 {
			t.Errorf("%s model problems: %v", name, problems)
		}
	}
}

func TestRegistrationReachable(t *testing.T) {
	c, err := Compose()
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	res := mc.Check(c.System, mc.Invariant{
		PropName: "never-registered",
		Holds:    ts.Neq{Var: "ue_state", Value: string(MMRegistered)},
	}, mc.Options{})
	if res.Verified {
		t.Fatal("5G registration unreachable in composed model")
	}
	names := strings.Join(res.Counterexample.RuleNames(), "\n")
	for _, want := range []string{"registration_request", "authentication_request", "security_mode_command", "registration_accept"} {
		if !strings.Contains(names, want) {
			t.Errorf("registration path misses %s:\n%s", want, names)
		}
	}
}

// TestP1CarriesOverTo5G: the stale-SQN replay property is violated on the
// 5G model exactly as on 4G, because TS 33.501 reuses the Annex C scheme.
func TestP1CarriesOverTo5G(t *testing.T) {
	c, err := Compose()
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	prop := mc.NeverFires{
		PropName: "5g-ue-never-accepts-stale-sqn",
		Match:    ruleContains("ue:recv:authentication_request@replay", "sqn_in_range=1", "/authentication_response"),
	}
	out, err := cegar.Verify(c, prop, cegar.Config{PreCapture: true})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if out.Verified {
		t.Fatal("P1 not found on the 5G model")
	}
	// The same countermeasure closes it: the (still optional, still
	// unimplemented) freshness limit L.
	out2, err := cegar.Verify(c, prop, cegar.Config{
		PreCapture: true,
		SQN:        sqn.Config{INDBits: sqn.DefaultINDBits, FreshnessLimit: 2},
	})
	if err != nil {
		t.Fatalf("Verify with L: %v", err)
	}
	if !out2.Verified {
		t.Errorf("freshness limit did not close P1 on 5G: %+v", out2)
	}
}

// TestP3CarriesOverTo5G: the Configuration Update procedure can be
// entirely denied by dropping five commands (T3555's abort), pinning the
// 5G-GUTI.
func TestP3CarriesOverTo5G(t *testing.T) {
	c, err := Compose()
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	prop := mc.Response{
		PropName: "5g-configuration-update-completes",
		Trigger:  ruleContains("mme:config_update:start"),
		Goal:     ruleContains("mme:recv:configuration_update_complete@"),
	}
	out, err := cegar.Verify(c, prop, cegar.Config{PreCapture: true})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if out.Verified {
		t.Fatal("P3 not found on the 5G configuration update procedure")
	}
	hasDrop := false
	for _, n := range out.Attack.RuleNames() {
		if strings.Contains(n, "adv:drop") && strings.Contains(n, "configuration_update_command") {
			hasDrop = true
		}
	}
	if !hasDrop {
		t.Errorf("5G P3 attack lacks command drops:\n%s", out.Attack)
	}
}

// TestConfigUpdateAbortAfterFiveDrops mirrors the quoted TS 24.501
// requirement: retransmission four times, abort on the fifth expiry.
func TestConfigUpdateAbortAfterFiveDrops(t *testing.T) {
	c, err := Compose()
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	res := mc.Check(c.System, mc.Invariant{
		PropName: "never-aborted",
		Holds:    ts.Neq{Var: "proc_config_update", Value: "aborted"},
	}, mc.Options{})
	if res.Verified {
		t.Fatal("configuration update abort unreachable")
	}
}

// TestForgedAuthRefutedOn5G: the CEGAR loop discharges forgery exactly as
// in 4G (5G AKA still rests on K).
func TestForgedAuthRefutedOn5G(t *testing.T) {
	c, err := Compose()
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	prop := mc.NeverFires{
		PropName: "5g-no-forged-auth",
		Match:    ruleContains("ue:recv:authentication_request@inject", "/authentication_response"),
	}
	out, err := cegar.Verify(c, prop, cegar.Config{PreCapture: true})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !out.Verified {
		t.Errorf("forged 5G challenge not refuted: %+v", out)
	}
}

// TestSUCIConcealsSUPI: the 5G improvement — identification no longer
// exposes the permanent identity, unlike 4G's V11/V13 findings.
func TestSUCIConcealsSUPI(t *testing.T) {
	know := cpv.NewKnowledge(cpv.PublicInitialKnowledge()...)
	know.Add(SUCITerm()) // the adversary observes the SUCI on the air
	if know.Derivable(cpv.IMSITerm()) {
		t.Error("SUPI derivable from the SUCI; 5G concealment broken")
	}
	// The home network, holding the private key, can of course still
	// relate SUCIs — we only assert the passive adversary cannot.
	if !know.Derivable(SUCITerm()) {
		t.Error("observed SUCI not in knowledge")
	}
}

// TestP2EquivalenceOn5G: the linkability experiment transfers — a victim
// still answers a replayed stale challenge differently from a bystander.
func TestP2EquivalenceOn5G(t *testing.T) {
	v := cpv.NewNASVerifier(true)
	probes := []cpv.Probe{{Label: "replayed 5G challenge", Term: cpv.MessageTerm("authentication_request")}}
	victim := func(cpv.Probe) string { return "authentication_response" }
	other := func(cpv.Probe) string { return "auth_mac_failure" }
	if _, ok := v.Distinguish(probes, victim, other); !ok {
		t.Error("5G linkability experiment found processes equivalent")
	}
}

func TestPlainOnAirClassification(t *testing.T) {
	if !PlainOnAir(RegistrationRequest) {
		t.Error("registration_request should be plain")
	}
	if PlainOnAir(ConfigUpdateCommand) {
		t.Error("configuration_update_command must be protected")
	}
	if PlainOnAir(RegistrationAccept) {
		t.Error("registration_accept must be protected")
	}
}
