// Package fiveg adapts ProChecker to 5G, substantiating the paper's
// claim that "the key properties and insights leveraged by ProChecker
// ... remain unchanged in the upcoming 5G deployment" and its per-attack
// "Impact on 5G" analyses:
//
//   - P1/P2: TS 33.501 reuses the TS 33.102 Annex C SQN scheme verbatim,
//     so the stale-challenge replay and the linkability it enables carry
//     over to 5G AKA;
//   - P3: TS 24.501's Configuration Update procedure is supervised by
//     T3555 with the same retransmit-four-times-then-abort design, so
//     selective denial pins the 5G-GUTI exactly like GUTI reallocation
//     in 4G;
//   - unlike 4G, 5G conceals the permanent identity as a SUCI (public-key
//     encrypted SUPI), which closes the cleartext-IMSI exposure the 4G
//     analysis flags.
//
// The package provides the TS 24.501 vocabulary (5GMM states, message
// names), hand-built UE and AMF models in the same style as the
// LTEInspector baselines, and the 5G property set; the threat composer,
// model checker, CPV and CEGAR loop are reused unchanged.
package fiveg

import (
	"prochecker/internal/core/fsmodel"
	"prochecker/internal/core/threat"
	"prochecker/internal/cpv"
	"prochecker/internal/spec"
)

// 5GMM states (TS 24.501 5.1.3).
const (
	MMNull           fsmodel.State = "5GMM_NULL"
	MMDeregistered   fsmodel.State = "5GMM_DEREGISTERED"
	MMRegisteredInit fsmodel.State = "5GMM_REGISTERED_INITIATED"
	MMRegistered     fsmodel.State = "5GMM_REGISTERED"
	MMDeregInit      fsmodel.State = "5GMM_DEREGISTERED_INITIATED"
	MMServiceReqInit fsmodel.State = "5GMM_SERVICE_REQUEST_INITIATED"
)

// AMF-side states.
const (
	AMFDeregistered fsmodel.State = "AMF_5GMM_DEREGISTERED"
	AMFCommonProc   fsmodel.State = "AMF_5GMM_COMMON_PROCEDURE_INITIATED"
	AMFWaitComplete fsmodel.State = "AMF_5GMM_WAIT_REGISTRATION_COMPLETE"
	AMFRegistered   fsmodel.State = "AMF_5GMM_REGISTERED"
	AMFDeregInit    fsmodel.State = "AMF_5GMM_DEREGISTERED_INITIATED"
)

// 5G-specific NAS message names (TS 24.501). Messages whose name and
// semantics are identical to 4G (authentication_request/response,
// security_mode_command/complete, service_request, identity_request)
// reuse the spec constants, so the CPV's NAS theory applies unchanged.
const (
	RegistrationRequest  spec.MessageName = "registration_request"
	RegistrationAccept   spec.MessageName = "registration_accept"
	RegistrationComplete spec.MessageName = "registration_complete"
	RegistrationReject   spec.MessageName = "registration_reject"
	ConfigUpdateCommand  spec.MessageName = "configuration_update_command"
	ConfigUpdateComplete spec.MessageName = "configuration_update_complete"
	DeregRequest         spec.MessageName = "deregistration_request"
	DeregAccept          spec.MessageName = "deregistration_accept"
)

// PlainOnAir classifies 5G messages: like 4G, initial signalling and the
// AKA run are unprotected; everything after the security mode procedure
// is protected. The configuration update command is always protected.
func PlainOnAir(m spec.MessageName) bool {
	switch m {
	case RegistrationRequest, RegistrationReject, DeregRequest:
		return true
	case spec.AuthRequest, spec.AuthResponse, spec.AuthSyncFailure,
		spec.AuthMACFailure, spec.AuthReject, spec.IdentityRequest,
		spec.IdentityResponse, spec.Paging, spec.ServiceReject:
		return true
	default:
		return false
	}
}

func t(from, to fsmodel.State, cond spec.MessageName, preds []fsmodel.Predicate, actions ...spec.MessageName) fsmodel.Transition {
	if len(actions) == 0 {
		actions = []spec.MessageName{spec.NullAction}
	}
	return fsmodel.Transition{
		From: from, To: to,
		Cond:    fsmodel.Condition{Message: cond, Predicates: preds},
		Actions: actions,
	}
}

func preds(pairs ...string) []fsmodel.Predicate {
	var out []fsmodel.Predicate
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, fsmodel.Predicate{Var: pairs[i], Value: pairs[i+1]})
	}
	return out
}

// UE returns the 5G UE model. The authentication transitions carry the
// same SQN predicates as the extracted 4G models, because 5G AKA's SQN
// generation and verification scheme is *exactly* the 4G one — the root
// cause of P1 and P2 ships unchanged.
func UE() *fsmodel.FSM {
	m := fsmodel.New("UE/5G", MMDeregistered)
	for _, tr := range []fsmodel.Transition{
		t(MMDeregistered, MMRegisteredInit, spec.InternalEvent, nil, RegistrationRequest),
		// 5G AKA: same Annex C scheme, same out-of-order acceptance.
		t(MMRegisteredInit, MMRegisteredInit, spec.AuthRequest,
			preds("mac_valid", "1", "sqn_in_range", "1"), spec.AuthResponse),
		t(MMRegisteredInit, MMRegisteredInit, spec.AuthRequest,
			preds("mac_valid", "1", "sqn_in_range", "0"), spec.AuthSyncFailure),
		t(MMRegisteredInit, MMRegisteredInit, spec.AuthRequest,
			preds("mac_valid", "0"), spec.AuthMACFailure),
		t(MMRegisteredInit, MMRegisteredInit, spec.SecurityModeCommand,
			preds("mac_valid", "1", "count_fresh", "1"), spec.SecurityModeComplet),
		t(MMRegisteredInit, MMRegistered, RegistrationAccept,
			preds("mac_valid", "1", "count_fresh", "1"), RegistrationComplete),
		t(MMRegisteredInit, MMDeregistered, RegistrationReject, preds("plain_header", "1")),
		t(MMRegisteredInit, MMDeregistered, spec.AuthReject, preds("plain_header", "1")),
		// Re-authentication while registered: the P1 surface.
		t(MMRegistered, MMRegistered, spec.AuthRequest,
			preds("mac_valid", "1", "sqn_in_range", "1"), spec.AuthResponse),
		t(MMRegistered, MMRegistered, spec.AuthRequest,
			preds("mac_valid", "1", "sqn_in_range", "0"), spec.AuthSyncFailure),
		// Configuration update: the 5G analogue of GUTI reallocation.
		t(MMRegistered, MMRegistered, ConfigUpdateCommand,
			preds("mac_valid", "1", "count_fresh", "1"), ConfigUpdateComplete),
		// Identification: answered with the SUCI, never the cleartext
		// SUPI — 5G's fix for the IMSI-catching surface.
		t(MMRegistered, MMRegistered, spec.IdentityRequest, preds("id_type", "1"), spec.IdentityResponse),
		t(MMDeregistered, MMDeregistered, spec.IdentityRequest, preds("id_type", "1"), spec.IdentityResponse),
		t(MMRegistered, MMServiceReqInit, spec.Paging, preds("paging_id_match", "1"), spec.ServiceRequest),
		t(MMServiceReqInit, MMRegistered, spec.ServiceAccept, preds("mac_valid", "1", "count_fresh", "1")),
		t(MMRegistered, MMDeregInit, spec.InternalEvent, nil, DeregRequest),
		t(MMDeregInit, MMDeregistered, DeregAccept, preds("mac_valid", "1", "count_fresh", "1")),
		t(MMRegistered, MMDeregistered, DeregRequest, preds("plain_header", "1"), DeregAccept),
	} {
		m.AddTransition(tr)
	}
	return m
}

// AMF returns the network-side 5G model.
func AMF() *fsmodel.FSM {
	m := fsmodel.New("AMF/5G", AMFDeregistered)
	n := func(from, to fsmodel.State, cond spec.MessageName, actions ...spec.MessageName) fsmodel.Transition {
		return t(from, to, cond, nil, actions...)
	}
	for _, tr := range []fsmodel.Transition{
		n(AMFDeregistered, AMFCommonProc, RegistrationRequest, spec.AuthRequest),
		n(AMFCommonProc, AMFCommonProc, spec.AuthResponse, spec.SecurityModeCommand),
		n(AMFCommonProc, AMFCommonProc, spec.AuthSyncFailure, spec.AuthRequest),
		n(AMFCommonProc, AMFDeregistered, spec.AuthMACFailure),
		n(AMFCommonProc, AMFWaitComplete, spec.SecurityModeComplet, RegistrationAccept),
		n(AMFWaitComplete, AMFRegistered, RegistrationComplete),
		n(AMFRegistered, AMFRegistered, ConfigUpdateComplete),
		n(AMFRegistered, AMFRegistered, spec.ServiceRequest, spec.ServiceAccept),
		n(AMFRegistered, AMFRegistered, spec.IdentityResponse),
		n(AMFRegistered, AMFCommonProc, spec.InternalEvent, spec.AuthRequest),
		n(AMFRegistered, AMFRegistered, spec.InternalEvent, spec.Paging),
		n(AMFRegistered, AMFDeregInit, spec.InternalEvent, DeregRequest),
		n(AMFRegistered, AMFDeregistered, DeregRequest, DeregAccept),
		n(AMFDeregInit, AMFDeregistered, DeregAccept),
	} {
		m.AddTransition(tr)
	}
	return m
}

// ConfigurationUpdateProcedure is the T3555-supervised procedure the
// paper quotes: "on the fifth expiry of timer T3555, the procedure shall
// be aborted", enabling P3 against the 5G-GUTI.
func ConfigurationUpdateProcedure() threat.SupervisedProcedure {
	return threat.SupervisedProcedure{
		Name:       "config_update",
		Command:    ConfigUpdateCommand,
		Complete:   ConfigUpdateComplete,
		ReadyState: string(AMFRegistered),
	}
}

// Compose builds the threat-instrumented 5G model IMPᵘ.
func Compose() (*threat.Composed, error) {
	return threat.Compose(threat.Config{
		Name:       "IMP/5G",
		UE:         UE(),
		MME:        AMF(),
		UEInternal: []fsmodel.Transition{},
		Supervise:  []threat.SupervisedProcedure{ConfigurationUpdateProcedure()},
		PlainOnAir: PlainOnAir,
	})
}

// SUCITerm is the 5G subscription concealed identifier: the SUPI (IMSI)
// encrypted under the home network's public key (TS 33.501 6.12). The
// private key never leaves the home network, so a passive adversary
// cannot invert it — the contrast with 4G's cleartext IMSI.
func SUCITerm() cpv.Term {
	return cpv.Fun{Name: "suci_conceal", Args: []cpv.Term{cpv.IMSITerm(), cpv.Name{ID: "pk_home_network"}}}
}
