package prochecker

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sync"

	"prochecker/internal/channel"
	"prochecker/internal/core/props"
	"prochecker/internal/dist"
	"prochecker/internal/jobs"
	"prochecker/internal/obs"
)

// The job subsystem's data types, re-exported for the service API:
// a JobSpec is one analysis job's content-addressed identity, a
// JobResult its deterministic verdict set.
type (
	// JobSpec describes one batch-analysis job.
	JobSpec = jobs.Spec
	// JobResult is a completed job's verdict set.
	JobResult = jobs.Result
	// JobVerdict is one property's outcome inside a JobResult.
	JobVerdict = jobs.Verdict
	// JobRetryPolicy bounds how the service retries transiently
	// failing jobs (attempts, backoff, jitter seed).
	JobRetryPolicy = jobs.RetryPolicy
	// JobRecoveryStats summarises what a write-ahead-log replay
	// reconstructed at service startup.
	JobRecoveryStats = jobs.RecoveryStats
)

// catalogueVersion memoises the property-catalogue fingerprint.
var catalogueVersion struct {
	once sync.Once
	v    string
}

// CatalogueVersion fingerprints the current 62-property catalogue
// (IDs, kinds and requirement texts). It participates in every job key,
// so editing the catalogue invalidates all cached results at once.
func CatalogueVersion() string {
	catalogueVersion.once.Do(func() {
		h := sha256.New()
		for _, p := range props.Catalogue() {
			fmt.Fprintf(h, "%s\x00%s\x00%s\x00", p.ID, p.Kind, p.Text)
		}
		catalogueVersion.v = hex.EncodeToString(h.Sum(nil))[:12]
	})
	return catalogueVersion.v
}

// NormalizeJobSpec canonicalises and validates a job spec so that
// equivalent submissions hash to one key: the implementation name is
// resolved case-insensitively, the fault spec is parsed and re-rendered
// in canonical form (zero-probability stages dropped, "" for benign),
// the property selection is sorted, deduplicated and checked against
// the catalogue, and the catalogue fingerprint is stamped in. It is
// idempotent — the jobs.Service uses it as its Normalize hook.
func NormalizeJobSpec(s JobSpec) (JobSpec, error) {
	impl, err := ParseImplementation(s.Impl)
	if err != nil {
		return s, err
	}
	s.Impl = string(impl)
	cfg, err := channel.ParseFaultSpec(s.Faults, s.Seed)
	if err != nil {
		return s, err
	}
	if cfg.Enabled() {
		s.Faults = cfg.String()
	} else {
		s.Faults = ""
	}
	s.Properties = jobs.SortProperties(s.Properties)
	for _, id := range s.Properties {
		if _, ok := props.ByID(id); !ok {
			return s, fmt.Errorf("prochecker: unknown property %q in job spec", id)
		}
	}
	s.Catalogue = CatalogueVersion()
	return s, nil
}

// RunJob executes one job spec end to end: analyse the implementation
// under the spec's fault adversary, check the selected properties (the
// full catalogue when none are selected), and package the deterministic
// verdicts. The spec is normalized first, so RunJob accepts the same
// loose inputs Submit does.
func RunJob(ctx context.Context, spec JobSpec) (*JobResult, error) {
	return runJob(ctx, spec, JobRunnerConfig{})
}

// JobRunnerConfig tunes how the job service executes each analysis:
// worker-pool width, exploration sharding, the resident-memory budget
// for state storage, and a snapshot root under which every job keeps
// its own exploration checkpoints so a crashed or killed service
// resumes mid-exploration instead of recomputing from scratch.
type JobRunnerConfig struct {
	// Workers bounds the per-job worker pool (0 = GOMAXPROCS).
	Workers int
	// Shards is the exploration owner-shard count (0/1 = unsharded).
	Shards int
	// MemBudget caps resident state-arena bytes per exploration; cold
	// segments spill to disk beyond it (0 = unbounded).
	MemBudget int64
	// SnapshotRoot, when non-empty, gives each job a private snapshot
	// directory keyed by the spec hash; it is removed when the job
	// completes successfully.
	SnapshotRoot string
}

// JobRunner adapts RunJob into the job service's Runner hook with a
// fixed per-job worker-pool bound (0 = GOMAXPROCS).
func JobRunner(workers int) jobs.Runner {
	return JobRunnerWith(JobRunnerConfig{Workers: workers})
}

// JobRunnerWith adapts RunJob into the job service's Runner hook with
// full control over sharding, spilling and snapshot placement.
func JobRunnerWith(cfg JobRunnerConfig) jobs.Runner {
	return func(ctx context.Context, spec jobs.Spec) (*jobs.Result, error) {
		return runJob(ctx, spec, cfg)
	}
}

// NewFleetWorker assembles a fleet worker agent around the production
// job runner: it pulls jobs from the coordinator over the lease
// protocol and executes each through the same RunJob machinery a local
// pool uses — per-job snapshot directories, sharding and memory budgets
// included. The returned worker is ready for further tuning (Poll,
// Backoff, Seed) before Run.
func NewFleetWorker(coord dist.Coordinator, id string, concurrency int, rcfg JobRunnerConfig, reg *obs.Registry) *dist.Worker {
	return &dist.Worker{
		Coordinator: coord,
		Runner:      JobRunnerWith(rcfg),
		ID:          id,
		Concurrency: concurrency,
		Metrics:     reg,
	}
}

func runJob(ctx context.Context, spec JobSpec, rcfg JobRunnerConfig) (*JobResult, error) {
	spec, err := NormalizeJobSpec(spec)
	if err != nil {
		return nil, err
	}
	impl, err := ParseImplementation(spec.Impl)
	if err != nil {
		return nil, err
	}
	cfg, err := channel.ParseFaultSpec(spec.Faults, spec.Seed)
	if err != nil {
		return nil, err
	}
	snapDir := jobs.SnapshotDirFor(rcfg.SnapshotRoot, spec.Key())
	opts := []Option{
		WithWorkers(rcfg.Workers), WithFaults(cfg),
		WithShards(rcfg.Shards), WithMemBudget(rcfg.MemBudget), WithSnapshotDir(snapDir),
	}
	if spec.NoVacuityPrune {
		opts = append(opts, WithNoVacuityPrune())
	}
	a, err := AnalyzeContext(ctx, impl, opts...)
	if err != nil {
		return nil, err
	}

	var results []PropertyResult
	if len(spec.Properties) == 0 {
		results, err = a.CheckAllContext(ctx)
		if err != nil {
			return nil, err
		}
	} else {
		for _, id := range spec.Properties {
			r, err := a.CheckPropertyContext(ctx, id)
			if err != nil {
				return nil, err
			}
			results = append(results, r)
		}
	}

	res := &JobResult{SchemaVersion: jobs.ResultSchemaVersion, Key: spec.Key(), Spec: spec}
	if lr := a.LintReport(); lr != nil {
		sum := &jobs.LintSummary{Codes: lr.Codes()}
		sum.Errors, sum.Warnings, sum.Infos = lr.Counts()
		res.Lint = sum
	}
	for _, r := range results {
		res.Verdicts = append(res.Verdicts, JobVerdict{
			ID:          r.ID,
			Class:       r.Class,
			Verified:    r.Verified,
			AttackFound: r.AttackFound,
			Vacuous:     r.Vacuous,
			Detail:      r.Detail,
		})
	}
	// The job is done and its result is about to be persisted; its
	// exploration checkpoints have nothing left to resume.
	if snapDir != "" {
		os.RemoveAll(snapDir) //nolint:errcheck // best-effort cleanup
	}
	return res, nil
}

// CampaignSpec is a batch matrix: every implementation crossed with
// every fault spec, all under one seed and one property selection —
// the paper's multi-implementation evaluation as a single submission.
type CampaignSpec struct {
	// Impls lists implementation names (case-insensitive).
	Impls []string `json:"impls"`
	// Faults lists fault-injection specs; an empty list means one
	// benign column, and an empty string inside the list is a benign
	// column alongside faulted ones.
	Faults []string `json:"faults,omitempty"`
	// Seed is the base PRNG seed shared by every cell.
	Seed int64 `json:"seed"`
	// Properties selects catalogue property IDs (empty = full
	// catalogue).
	Properties []string `json:"properties,omitempty"`
	// NoVacuityPrune disables the static vacuity pre-pass in every
	// cell of the matrix.
	NoVacuityPrune bool `json:"no_vacuity_prune,omitempty"`
}

// Jobs expands the matrix into normalized job specs, implementations
// outermost, and rejects an empty or invalid matrix.
func (c CampaignSpec) Jobs() ([]JobSpec, error) {
	if len(c.Impls) == 0 {
		return nil, fmt.Errorf("prochecker: campaign lists no implementations")
	}
	faults := c.Faults
	if len(faults) == 0 {
		faults = []string{""}
	}
	var out []JobSpec
	for _, impl := range c.Impls {
		for _, f := range faults {
			spec, err := NormalizeJobSpec(JobSpec{
				Impl:           impl,
				Faults:         f,
				Seed:           c.Seed,
				Properties:     append([]string(nil), c.Properties...),
				NoVacuityPrune: c.NoVacuityPrune,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, spec)
		}
	}
	return out, nil
}

// JobLabel names one campaign cell for the differential report:
// the implementation, plus its fault spec when the link is hostile.
func JobLabel(spec JobSpec) string {
	if spec.Faults == "" {
		return spec.Impl
	}
	return spec.Impl + "+" + spec.Faults
}
