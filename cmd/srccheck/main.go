// Command srccheck runs the repository's custom Go-source checks
// (internal/analysis): leaked obs.Start spans, os file handles that
// are neither closed nor handed off, resilience error sentinels the
// classifier does not handle, and non-exhaustive switches over the
// closed enum vocabularies (resilience.Kind, the jobs WAL record
// types). ci.sh runs it on every build.
//
// Usage:
//
//	srccheck [dir]
//
// Findings print one per line as file:line: [check] message; the exit
// code is 1 when any finding is reported, 2 on operational errors.
package main

import (
	"fmt"
	"os"

	"prochecker/internal/analysis"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := analysis.CheckDir(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srccheck:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "srccheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
