package main

// Exploration-level chaos harness: runs the real binary in direct mode
// with -snapshot-dir, SIGKILLs it while the model checker is mid-
// exploration (after the first checkpoint lands on disk), reruns the
// same command against the same snapshot directory, and asserts the
// resumed run (a) actually resumed from a checkpoint and (b) produced
// verdicts identical to an uninterrupted control run's.

import (
	"encoding/json"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// manifestDoc is the subset of the run manifest the chaos test reads.
type manifestDoc struct {
	Metrics  map[string]any `json:"metrics"`
	Verdicts []struct {
		ID      string `json:"id"`
		Verdict string `json:"verdict"`
		Detail  string `json:"detail"`
	} `json:"verdicts"`
}

func readManifest(t *testing.T, path string) manifestDoc {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading manifest: %v", err)
	}
	var doc manifestDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parsing manifest %s: %v", path, err)
	}
	return doc
}

// verdictTriples projects a manifest's verdicts onto their deterministic
// fields (ID, verdict, detail) — durations legitimately differ between
// a fresh and a resumed run.
func verdictTriples(doc manifestDoc) [][3]string {
	out := make([][3]string, 0, len(doc.Verdicts))
	for _, v := range doc.Verdicts {
		out = append(out, [3]string{v.ID, v.Verdict, v.Detail})
	}
	return out
}

// checkArgs is the analysis command under test: a full catalogue check
// with sharded exploration and level checkpoints.
func checkArgs(snapDir, manifestPath string) []string {
	return []string{
		"-impl", "srsLTE", "-check", "all",
		"-workers", "2", "-shards", "2",
		"-snapshot-dir", snapDir,
		"-manifest", manifestPath,
		"-quiet",
	}
}

// TestChaosKillMidExplorationResumesByteIdentical is the acceptance
// criterion for the snapshot/resume tentpole: an uncatchable kill in
// the middle of state-space exploration must cost only the levels since
// the last checkpoint, and the resumed run's verdict set must be
// indistinguishable from a run that was never interrupted.
func TestChaosKillMidExplorationResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness skipped in -short mode")
	}
	bin, err := buildBinary()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(chaosSeed))

	// Control arm: same command, never interrupted.
	ctrlManifest := filepath.Join(t.TempDir(), "control.json")
	ctrl := exec.Command(bin, checkArgs(t.TempDir(), ctrlManifest)...)
	if out, err := ctrl.CombinedOutput(); err != nil {
		t.Fatalf("control run: %v\n%s", err, out)
	}
	want := verdictTriples(readManifest(t, ctrlManifest))
	if len(want) == 0 {
		t.Fatal("control run recorded no verdicts")
	}

	// Chaos arm: start the victim, wait for the first checkpoint to hit
	// disk (so there is something to resume from), then SIGKILL after a
	// short seeded jitter — mid-exploration with near certainty.
	snapDir := t.TempDir()
	victimManifest := filepath.Join(t.TempDir(), "victim.json")
	victim := exec.Command(bin, checkArgs(snapDir, victimManifest)...)
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	victimExit := make(chan error, 1)
	go func() { victimExit <- victim.Wait(); close(victimExit) }()
	t.Cleanup(func() {
		victim.Process.Kill() //nolint:errcheck // already-exited is fine
		<-victimExit
	})

	deadline := time.Now().Add(60 * time.Second)
	for {
		snaps, _ := filepath.Glob(filepath.Join(snapDir, "snap-*.ckpt"))
		if len(snaps) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never wrote a checkpoint")
		}
		time.Sleep(5 * time.Millisecond)
	}
	jitter := time.Duration(rng.Intn(100)) * time.Millisecond
	t.Logf("first checkpoint on disk; SIGKILL after %v (seed %d)", jitter, chaosSeed)
	time.Sleep(jitter)
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v (victim finished before the kill — lower the jitter)", err)
	}
	if err := <-victimExit; err == nil {
		t.Fatal("victim exited cleanly despite SIGKILL")
	}

	// Rerun against the same snapshot directory: must resume, complete,
	// and match the control verdicts exactly.
	resumedManifest := filepath.Join(t.TempDir(), "resumed.json")
	resumed := exec.Command(bin, checkArgs(snapDir, resumedManifest)...)
	if out, err := resumed.CombinedOutput(); err != nil {
		t.Fatalf("resumed run: %v\n%s", err, out)
	}
	doc := readManifest(t, resumedManifest)
	if lvl, ok := doc.Metrics["mc.resume_level"].(float64); !ok || lvl <= 0 {
		t.Fatalf("resumed run did not restore a checkpoint (mc.resume_level=%v)", doc.Metrics["mc.resume_level"])
	}
	got := verdictTriples(doc)
	if len(got) != len(want) {
		t.Fatalf("resumed run produced %d verdicts, control %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdict %d differs after kill+resume:\n  control: %v\n  resumed: %v", i, want[i], got[i])
		}
	}
}
