package main

import (
	"bufio"
	"context"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"prochecker"
	"prochecker/internal/jobs"
	"prochecker/internal/server"
)

func TestServiceFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-serve", ":0", "-submit"}, "excludes"},
		{[]string{"-serve", ":0", "-server", "http://x"}, "excludes"},
		{[]string{"-submit"}, "require -server"},
		{[]string{"-campaign", "OAI"}, "require -server"},
		{[]string{"-server", "http://x", "-submit", "-campaign", "OAI"}, "mutually exclusive"},
		{[]string{"-wait"}, "-wait requires"},
	}
	for _, c := range cases {
		err := run(c.args)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("run(%v) = %v, want error containing %q", c.args, err, c.want)
		}
	}
}

func TestCLIRejectsUnknownImplementation(t *testing.T) {
	err := run([]string{"-impl", "amarisoft", "-check", "S06"})
	if err == nil {
		t.Fatal("unknown -impl accepted")
	}
	for _, want := range []string{"amarisoft", "conformant", "srsLTE", "OAI"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

func TestCLIImplementationCaseInsensitive(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-impl", "SRSLTE", "-coverage"}) })
	if err != nil {
		t.Fatalf("run -impl SRSLTE: %v", err)
	}
	if strings.TrimSpace(out) == "" {
		t.Fatal("-coverage printed nothing")
	}
}

// newJobServer hosts a real job service for client-mode tests.
func newJobServer(t *testing.T) string {
	t.Helper()
	store, err := jobs.OpenStore(t.TempDir(), 16)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := jobs.New(jobs.Config{
		Runner:    prochecker.JobRunner(2),
		Normalize: prochecker.NormalizeJobSpec,
		Store:     store,
		Workers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(server.New(svc, nil))
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestClientSubmitAndWait(t *testing.T) {
	url := newJobServer(t)
	out, err := capture(t, func() error {
		return runClient(clientConfig{
			serverURL: url,
			submit:    true,
			wait:      true,
			poll:      5 * time.Millisecond,
			impl:      "srslte",
			seed:      7,
			check:     "S06",
			timeout:   2 * time.Minute,
		})
	})
	if err != nil {
		t.Fatalf("runClient: %v\noutput:\n%s", err, out)
	}
	for _, want := range []string{"job j-", "S06", "properties violated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("client output missing %q:\n%s", want, out)
		}
	}
}

func TestClientCampaignWaitPrintsDifferential(t *testing.T) {
	url := newJobServer(t)
	out, err := capture(t, func() error {
		return runClient(clientConfig{
			serverURL: url,
			campaign:  "conformant,OAI",
			wait:      true,
			poll:      5 * time.Millisecond,
			faults:    "",
			seed:      42,
			check:     "S06",
			timeout:   2 * time.Minute,
		})
	})
	if err != nil {
		t.Fatalf("runClient campaign: %v\noutput:\n%s", err, out)
	}
	for _, want := range []string{"campaign c-", "conformant", "OAI", "S06"} {
		if !strings.Contains(out, want) {
			t.Fatalf("campaign output missing %q:\n%s", want, out)
		}
	}
}

// TestServeModeSIGTERMDrain boots the real -serve mode, submits a job
// over HTTP, then delivers SIGTERM to the process and expects a clean
// drain: the submitted job finishes, runServe returns nil.
func TestServeModeSIGTERMDrain(t *testing.T) {
	storeDir := t.TempDir()

	// runServe announces its bound address on stderr; capture it
	// through a pipe to learn the ephemeral port.
	oldStderr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	restore := func() {
		os.Stderr = oldStderr
		w.Close()
	}
	defer restore()

	done := make(chan error, 1)
	go func() {
		done <- runServe(serveConfig{
			addr:     "127.0.0.1:0",
			storeDir: storeDir,
			storeMax: 16,
			queueCap: 8,
			workers:  2,
			timeout:  time.Minute,
		})
	}()

	addrCh := make(chan string, 1)
	go func() {
		re := regexp.MustCompile(`serving jobs API on http://([^/]+)/`)
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
				return
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("runServe exited before announcing its address: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never announced its address")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cl := &server.Client{Base: "http://" + addr}
	job, err := cl.SubmitJob(ctx, jobs.Spec{Impl: "srslte", Seed: 7, Properties: []string{"S06"}})
	if err != nil {
		t.Fatal(err)
	}
	if job, err = cl.WaitJob(ctx, job.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if job.State != jobs.StateDone {
		t.Fatalf("job state = %s (error %q), want done", job.State, job.Error)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		// No queued jobs were cancelled, so the drain is clean.
		if err != nil {
			t.Fatalf("runServe after SIGTERM = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("runServe did not drain within 30s of SIGTERM")
	}

	// The drained store kept the result: a fresh service over the same
	// directory serves it as a cache hit.
	reopened, err := jobs.OpenStore(storeDir, 16)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 1 {
		t.Fatalf("store holds %d results after drain, want 1", reopened.Len())
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(" a , b ,c", ","); strings.Join(got, "|") != "a|b|c" {
		t.Fatalf("splitList = %v", got)
	}
	if got := splitList("  ", ","); got != nil {
		t.Fatalf("splitList(blank) = %v, want nil", got)
	}
	if got := splitList("drop=0.1; corrupt=0.2", ";"); strings.Join(got, "|") != "drop=0.1|corrupt=0.2" {
		t.Fatalf("splitList faults = %v", got)
	}
}

func TestParsePropertySelection(t *testing.T) {
	if got := parsePropertySelection(""); got != nil {
		t.Fatalf("empty selection = %v, want nil", got)
	}
	if got := parsePropertySelection("all"); got != nil {
		t.Fatalf("'all' selection = %v, want nil", got)
	}
	if got := parsePropertySelection("S06,S07"); strings.Join(got, "|") != "S06|S07" {
		t.Fatalf("selection = %v", got)
	}
}
