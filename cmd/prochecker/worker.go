// Fleet worker mode: pull jobs from a remote coordinator over the
// lease API (-worker -server URL) and run them through the production
// job runner until interrupted.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"prochecker"
	"prochecker/internal/obs"
	"prochecker/internal/server"
)

// workerConfig carries the -worker flags.
type workerConfig struct {
	serverURL    string
	id           string        // worker identity ("" = host-pid)
	concurrency  int           // parallel pull loops
	workers      int           // per-job analysis pool size
	shards       int           // exploration owner-shards per job
	memBudget    int64         // resident state-arena bytes per job
	snapshotDir  string        // root for per-job exploration checkpoints
	retries      int           // HTTP attempts per request (0 = default)
	retryBackoff time.Duration // base HTTP retry backoff
	seed         int64         // jitter seed
	metricsAddr  string        // debug endpoint; "" disables
}

// runWorker runs the fleet agent until SIGINT/SIGTERM. On shutdown the
// agent stops acquiring, fails its in-flight leases with the cancelled
// class (the coordinator requeues them uncharged for another worker),
// and exits clean.
func runWorker(cfg workerConfig) error {
	id := cfg.id
	if id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	reg := obs.NewRegistry()
	if cfg.metricsAddr != "" {
		dbg, derr := obs.Serve(cfg.metricsAddr, reg)
		if derr != nil {
			return derr
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "prochecker: worker serving debug endpoint on http://%s\n", dbg.Addr)
	}

	cl := &server.Client{
		Base: cfg.serverURL, Retries: cfg.retries, Backoff: cfg.retryBackoff, Seed: cfg.seed,
	}
	w := prochecker.NewFleetWorker(cl, id, cfg.concurrency, prochecker.JobRunnerConfig{
		Workers:      cfg.workers,
		Shards:       cfg.shards,
		MemBudget:    cfg.memBudget,
		SnapshotRoot: cfg.snapshotDir,
	}, reg)
	w.Seed = cfg.seed

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "prochecker: worker %s pulling jobs from %s (concurrency %d)\n",
		id, cfg.serverURL, cfg.concurrency)
	err := w.Run(ctx)
	fmt.Fprintf(os.Stderr, "prochecker: worker %s stopped\n", id)
	if errors.Is(err, context.Canceled) {
		return nil // interrupted: in-flight leases were handed back
	}
	return err
}
