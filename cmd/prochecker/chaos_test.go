package main

// Crash-recovery chaos harness: builds the real binary, runs -serve as
// a subprocess with a WAL and store, SIGKILLs it mid-campaign at a
// seeded random point, restarts it against the same directories, and
// asserts that nothing was lost — the campaign finishes under its
// original ID with its original job set, and the final differential
// report is byte-identical to an uninterrupted run's.

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"prochecker"
	"prochecker/internal/jobs"
	"prochecker/internal/server"
)

// chaosSeed drives every random choice the harness makes (kill
// timing), so a failure reproduces exactly.
const chaosSeed = 20260808

// buildBinary compiles the prochecker binary once per test run.
var buildBinary = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "prochecker-chaos-*")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "prochecker")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("go build: %v\n%s", err, out)
	}
	return bin, nil
})

// serveProc is one -serve subprocess under harness control.
type serveProc struct {
	cmd  *exec.Cmd
	addr string
	exit chan error
}

// startServe launches the binary in serve mode against the given
// store+WAL directories and waits for it to announce its address.
// Extra flags (fleet mode: -workers 0, -lease-ttl, ...) override the
// defaults, since the flag package keeps the last occurrence.
func startServe(t *testing.T, bin, storeDir, walDir string, extra ...string) *serveProc {
	t.Helper()
	// The snapshot root lives beside the store so exploration
	// checkpoints, like results, survive the restart cycle.
	args := []string{
		"-serve", "127.0.0.1:0",
		"-store", storeDir,
		"-wal", walDir,
		"-workers", "2",
		"-queue", "16",
		"-snapshot-dir", filepath.Join(storeDir, "snapshots"),
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serveProc{cmd: cmd, exit: make(chan error, 1)}
	go func() { p.exit <- cmd.Wait(); close(p.exit) }()
	t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck // already-exited is fine
		<-p.exit
	})

	addrCh := make(chan string, 1)
	go func() {
		re := regexp.MustCompile(`serving jobs API on http://([^/]+)/`)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := re.FindStringSubmatch(sc.Text()); m != nil {
				addrCh <- m[1]
			}
			// Keep draining so the subprocess never blocks on stderr.
		}
	}()
	select {
	case p.addr = <-addrCh:
	case err := <-p.exit:
		t.Fatalf("serve subprocess exited before announcing its address: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve subprocess never announced its address")
	}
	return p
}

func (p *serveProc) client() *server.Client {
	return &server.Client{Base: "http://" + p.addr, Backoff: 20 * time.Millisecond, Seed: chaosSeed}
}

// sigkill delivers an un-catchable kill — the crash under test — and
// waits for the process to be fully gone.
func (p *serveProc) sigkill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	select {
	case <-p.exit:
	case <-time.After(10 * time.Second):
		t.Fatal("process survived SIGKILL")
	}
}

// sigterm asks for a graceful drain and waits for exit.
func (p *serveProc) sigterm(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case <-p.exit:
	case <-time.After(60 * time.Second):
		t.Fatal("process did not drain within 60s of SIGTERM")
	}
}

// chaosCampaign is the workload: 2 impls × 2 fault columns = 4 jobs,
// one property each, enough to straddle a crash.
func chaosCampaign() prochecker.CampaignSpec {
	return prochecker.CampaignSpec{
		Impls:      []string{"conformant", "srsLTE"},
		Faults:     []string{"", "drop=0.15"},
		Seed:       42,
		Properties: []string{"S06"},
	}
}

// TestChaosKillMidCampaignResumesByteIdentical is the acceptance
// criterion for the crash-recovery tentpole.
func TestChaosKillMidCampaignResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness skipped in -short mode")
	}
	bin, err := buildBinary()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rng := rand.New(rand.NewSource(chaosSeed))

	// Control arm: the same campaign, uninterrupted.
	control := startServe(t, bin, t.TempDir(), t.TempDir())
	camp, err := control.client().SubmitCampaign(ctx, chaosCampaign())
	if err != nil {
		t.Fatal(err)
	}
	wantCamp, err := control.client().WaitCampaign(ctx, camp.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if wantCamp.State != jobs.StateDone {
		t.Fatalf("control campaign ended %s, want done", wantCamp.State)
	}
	if wantCamp.Report == "" {
		t.Fatal("control campaign rendered no report")
	}
	control.sigterm(t)

	// Chaos arm: fresh directories, SIGKILL at a seeded random point
	// after the campaign is accepted, then restart on the same dirs.
	storeDir, walDir := t.TempDir(), t.TempDir()
	victim := startServe(t, bin, storeDir, walDir)
	camp2, err := victim.client().SubmitCampaign(ctx, chaosCampaign())
	if err != nil {
		t.Fatal(err)
	}
	if len(camp2.JobIDs) != len(wantCamp.JobIDs) {
		t.Fatalf("chaos campaign has %d jobs, control %d", len(camp2.JobIDs), len(wantCamp.JobIDs))
	}
	killAfter := time.Duration(50+rng.Intn(400)) * time.Millisecond
	t.Logf("SIGKILL %v after campaign accepted (seed %d)", killAfter, chaosSeed)
	time.Sleep(killAfter)
	victim.sigkill(t)

	// Restart against the same WAL+store; the campaign must still be
	// known under its original ID and run to completion.
	resumed := startServe(t, bin, storeDir, walDir)
	gotCamp, err := resumed.client().WaitCampaign(ctx, camp2.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("campaign %s lost across SIGKILL+restart: %v", camp2.ID, err)
	}
	if gotCamp.State != jobs.StateDone {
		t.Fatalf("resumed campaign ended %s, want done", gotCamp.State)
	}

	// Zero lost or duplicated jobs: the job table holds exactly the
	// originally-accepted job IDs, each terminal and done.
	list, err := resumed.client().Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, j := range list {
		seen[j.ID]++
	}
	if len(list) != len(camp2.JobIDs) {
		t.Fatalf("job table holds %d jobs after resume, want %d", len(list), len(camp2.JobIDs))
	}
	for _, id := range camp2.JobIDs {
		if seen[id] != 1 {
			t.Fatalf("job %s appears %d times after resume, want exactly 1", id, seen[id])
		}
	}
	for _, j := range list {
		if j.State != jobs.StateDone {
			t.Fatalf("job %s ended %s (%s) after resume, want done", j.ID, j.State, j.Error)
		}
	}

	// Byte-identical differential report versus the uninterrupted run.
	if gotCamp.Report != wantCamp.Report {
		t.Fatalf("resumed report differs from uninterrupted run:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s",
			wantCamp.Report, gotCamp.Report)
	}
	if strings.TrimSpace(gotCamp.Report) == "" {
		t.Fatal("resumed campaign rendered an empty report")
	}

	// A graceful drain checkpoints the WAL; one more restart adopts
	// everything without recomputation (cache hits only).
	resumed.sigterm(t)
	final := startServe(t, bin, storeDir, walDir)
	finalCamp, err := final.client().Campaign(ctx, camp2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if finalCamp.State != jobs.StateDone || finalCamp.Report != wantCamp.Report {
		t.Fatalf("second restart lost campaign state: %s", finalCamp.State)
	}
	final.sigterm(t)
}
