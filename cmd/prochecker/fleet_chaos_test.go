package main

// Multi-node chaos harness for the distribution subsystem: a
// workerless coordinator hands the campaign to a fleet worker
// subprocess over the lease API, the worker is SIGKILLed mid-job, and
// the harness asserts the lease expires, the job requeues through the
// retry path, and a second worker completes the campaign with a
// differential report byte-identical to a single-node control run.

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"prochecker/internal/jobs"
)

// workerProc is one -worker subprocess under harness control.
type workerProc struct {
	cmd  *exec.Cmd
	exit chan error
}

// startWorker launches a fleet worker agent pulling from the
// coordinator and waits for its startup banner.
func startWorker(t *testing.T, bin, serverURL, id, snapDir string) *workerProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-worker",
		"-server", serverURL,
		"-worker-id", id,
		"-concurrency", "1",
		"-snapshot-dir", snapDir,
		"-retry-backoff", "20ms",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &workerProc{cmd: cmd, exit: make(chan error, 1)}
	go func() { p.exit <- cmd.Wait(); close(p.exit) }()
	t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck // already-exited is fine
		<-p.exit
	})

	up := make(chan struct{}, 1)
	go func() {
		re := regexp.MustCompile(`worker \S+ pulling jobs from`)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if re.MatchString(sc.Text()) {
				select {
				case up <- struct{}{}:
				default:
				}
			}
			// Keep draining so the subprocess never blocks on stderr.
		}
	}()
	select {
	case <-up:
	case err := <-p.exit:
		t.Fatalf("worker subprocess exited before its banner: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("worker subprocess never announced itself")
	}
	return p
}

// sigkill crashes the worker without any chance to hand its lease back.
func (p *workerProc) sigkill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL worker: %v", err)
	}
	select {
	case <-p.exit:
	case <-time.After(10 * time.Second):
		t.Fatal("worker survived SIGKILL")
	}
}

// scrapeCounter reads one un-labelled counter from the coordinator's
// Prometheus endpoint (names are exported with dots folded to
// underscores under the "prochecker" namespace).
func scrapeCounter(t *testing.T, base, name string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("parsing %s sample %q: %v", name, line, err)
			}
			return v
		}
	}
	return 0
}

// TestFleetChaosKillWorkerMidJob is the acceptance criterion for the
// distribution tentpole: killing the worker that holds a lease must
// cost nothing but time — the lease expires, the job requeues, another
// worker finishes it, and the campaign's differential report is
// byte-identical to a single-node run's.
func TestFleetChaosKillWorkerMidJob(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos harness skipped in -short mode")
	}
	bin, err := buildBinary()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// Control arm: the same campaign on an ordinary single-node server.
	control := startServe(t, bin, t.TempDir(), t.TempDir())
	camp, err := control.client().SubmitCampaign(ctx, chaosCampaign())
	if err != nil {
		t.Fatal(err)
	}
	wantCamp, err := control.client().WaitCampaign(ctx, camp.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if wantCamp.State != jobs.StateDone || wantCamp.Report == "" {
		t.Fatalf("control campaign ended %s, want done with report", wantCamp.State)
	}
	control.sigterm(t)

	// Fleet arm: a workerless coordinator with a short lease TTL and
	// retries for the lease-expired class.
	coord := startServe(t, bin, t.TempDir(), t.TempDir(),
		"-workers", "0",
		"-retries", "3",
		"-lease-ttl", "2s",
	)
	cl := coord.client()
	base := "http://" + coord.addr
	fleetCamp, err := cl.SubmitCampaign(ctx, chaosCampaign())
	if err != nil {
		t.Fatal(err)
	}

	// Worker A pulls the first job; kill it the moment it holds a lease.
	victim := startWorker(t, bin, base, "fleet-a", t.TempDir())
	deadline := time.Now().Add(30 * time.Second)
	for {
		leases, err := cl.Leases(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(leases) > 0 {
			t.Logf("killing fleet-a holding %s (job %s, attempt %d)",
				leases[0].ID, leases[0].JobID, leases[0].Attempt)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fleet-a never acquired a lease")
		}
		time.Sleep(10 * time.Millisecond)
	}
	victim.sigkill(t)

	// The dead worker's lease is still on the books until the TTL runs
	// out; the sweeper then expires it and requeues the job.
	if leases, err := cl.Leases(ctx); err != nil || len(leases) == 0 {
		t.Fatalf("leases after SIGKILL = %v, %v; want the orphaned lease still held", leases, err)
	}

	// Worker B drains the rest of the campaign, orphaned job included.
	startWorker(t, bin, base, "fleet-b", t.TempDir())
	gotCamp, err := cl.WaitCampaign(ctx, fleetCamp.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if gotCamp.State != jobs.StateDone {
		t.Fatalf("fleet campaign ended %s, want done", gotCamp.State)
	}

	// The crash cost one lease expiry, observable on the obs plane.
	if got := scrapeCounter(t, base, "prochecker_dist_leases_expired"); got < 1 {
		t.Fatalf("prochecker_dist_leases_expired = %d, want >= 1", got)
	}

	// Every job finished, each attributed to a fleet worker — and the
	// survivor completed at least one (the orphaned job among them).
	byWorker := map[string]int{}
	for _, j := range gotCamp.Jobs {
		if j.State != jobs.StateDone || j.Result == nil {
			t.Fatalf("job %s ended %s (%s), want done", j.ID, j.State, j.Error)
		}
		byWorker[j.Worker]++
	}
	if byWorker["fleet-b"] == 0 {
		t.Fatalf("jobs by worker = %v, want fleet-b to have completed the orphaned work", byWorker)
	}
	for w := range byWorker {
		if w != "fleet-a" && w != "fleet-b" {
			t.Fatalf("job attributed to unknown worker %q (distribution: %v)", w, byWorker)
		}
	}

	// The differential report is byte-identical to the single-node run:
	// distribution and mid-flight crashes change nothing about results.
	if gotCamp.Report != wantCamp.Report {
		t.Fatalf("fleet report differs from single-node control:\n--- control ---\n%s\n--- fleet ---\n%s",
			wantCamp.Report, gotCamp.Report)
	}
	coord.sigterm(t)
}
