package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prochecker/internal/obs"
	"prochecker/internal/resilience"
)

// capture runs f with stdout redirected and returns what it printed. The
// pipe is drained concurrently so large outputs (DOT/SMV dumps) cannot
// fill the pipe buffer and deadlock the writer.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := f()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestListProperties(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"S01", "V25", "security", "privacy", "LTEInspector-common"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-impl", "OAI", "-dot"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "EMM_REGISTERED") {
		t.Errorf("not a DOT FSM:\n%.200s", out)
	}
}

func TestSMVOutput(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-impl", "conformant", "-smv"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "MODULE main") || !strings.Contains(out, "TRANS") {
		t.Errorf("not SMV output:\n%.200s", out)
	}
}

func TestCheckSingleProperty(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-impl", "srsLTE", "-check", "S07"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "ATTACK") {
		t.Errorf("I3 not reported as attack on srsLTE:\n%s", out)
	}
}

func TestValidateP3(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-impl", "conformant", "-validate", "p3"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "attack succeeded:   true") {
		t.Errorf("P3 validation output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{"-impl", "nokia", "-dot"}); err == nil {
		t.Error("unknown implementation accepted")
	}
	if err := run([]string{"-validate", "p9"}); err == nil {
		t.Error("unknown validation accepted")
	}
	if err := run([]string{"-impl", "OAI", "-check", "NOPE"}); err == nil {
		t.Error("unknown property accepted")
	}
	if err := run([]string{"-conformance", "-faults", "teleport=1"}); err == nil {
		t.Error("bad fault spec accepted")
	}
	if err := run([]string{"-impl", "nokia", "-conformance"}); err == nil {
		t.Error("unknown implementation accepted for -conformance")
	}
}

func TestConformanceBenign(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-impl", "conformant", "-conformance"}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "faults: none") || !strings.Contains(out, "cases passed") {
		t.Errorf("conformance output:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Errorf("benign run reported failures:\n%s", out)
	}
}

// TestConformanceUnderFaults is the end-to-end acceptance check: a full
// suite run under seeded drop+corrupt fault injection completes without
// a process crash and reports per-case failures.
func TestConformanceUnderFaults(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-impl", "srsLTE", "-conformance", "-faults", "drop=0.2,corrupt=0.2", "-seed", "42"})
	})
	if err != nil {
		t.Fatalf("faulted run errored at the process level: %v", err)
	}
	if !strings.Contains(out, "fault(s) injected") {
		t.Errorf("missing fault summary:\n%s", out)
	}
	// The same seed must reproduce the same report byte for byte.
	again, err := capture(t, func() error {
		return run([]string{"-impl", "srsLTE", "-conformance", "-faults", "drop=0.2,corrupt=0.2", "-seed", "42"})
	})
	if err != nil {
		t.Fatalf("second faulted run: %v", err)
	}
	if out != again {
		t.Error("seeded fault runs printed different reports")
	}
}

func TestManifestWritten(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	_, err := capture(t, func() error {
		return run([]string{"-impl", "conformant", "-check", "S06", "-quiet", "-manifest", path})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	m, err := obs.ReadManifestFile(path)
	if err != nil {
		t.Fatalf("reading manifest: %v", err)
	}
	if m.Tool != "prochecker" || m.SchemaVersion != obs.ManifestSchemaVersion {
		t.Fatalf("manifest header = %+v", m)
	}
	if m.Config["impl"] != "conformant" || m.Config["check"] != "S06" {
		t.Errorf("config = %v", m.Config)
	}
	if len(m.Verdicts) != 1 || m.Verdicts[0].ID != "S06" {
		t.Fatalf("verdicts = %+v", m.Verdicts)
	}
	if m.Failure != nil {
		t.Errorf("clean run recorded a failure: %+v", m.Failure)
	}
	names := map[string]bool{}
	for _, n := range m.Spans.Names() {
		names[n] = true
	}
	for _, phase := range []string{"analyze", "conformance.suite", "property.evaluate"} {
		if !names[phase] {
			t.Errorf("manifest missing span %q", phase)
		}
	}
	if v, _ := m.Metrics["mc.states_explored"].(float64); v == 0 {
		t.Errorf("manifest metrics missing mc.states_explored: %v", m.Metrics["mc.states_explored"])
	}
}

// TestManifestOnFailure: a deadline-cut run still writes a well-formed
// manifest carrying the failure taxonomy classification and exit code.
func TestManifestOnFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	err := run([]string{"-impl", "conformant", "-check", "all", "-timeout", "1ns", "-quiet", "-manifest", path})
	if err == nil {
		t.Fatal("expired deadline produced no error")
	}
	m, rerr := obs.ReadManifestFile(path)
	if rerr != nil {
		t.Fatalf("reading manifest after failure: %v", rerr)
	}
	if m.Failure == nil {
		t.Fatal("failed run wrote no failure record")
	}
	if m.Failure.Class != resilience.KindCancelled.String() || m.Failure.ExitCode != resilience.ExitCancelled {
		t.Errorf("failure = %+v", m.Failure)
	}
	if len(m.Failure.Errors) == 0 {
		t.Error("failure record carries no error messages")
	}
}

// TestMetricsAddrFlag exercises the -metrics-addr wiring: a bad
// address fails the run up front, a valid ephemeral one serves without
// disturbing the results. (The live /debug/vars scrape is covered by
// obs's own TestServeEndpoint and by ci.sh's smoke run, which curls a
// -serve-wait process from outside.)
func TestMetricsAddrFlag(t *testing.T) {
	if err := run([]string{"-impl", "conformant", "-check", "S06", "-quiet", "-metrics-addr", "256.0.0.1:0"}); err == nil {
		t.Error("bad metrics address accepted")
	}
	// A valid ephemeral address must not disturb the run itself.
	out, err := capture(t, func() error {
		return run([]string{"-impl", "conformant", "-check", "S06", "-quiet", "-metrics-addr", "127.0.0.1:0"})
	})
	if err != nil {
		t.Fatalf("run with metrics endpoint: %v", err)
	}
	if !strings.Contains(out, "S06") {
		t.Errorf("results missing:\n%s", out)
	}
}

func TestVerbosityFlagConflicts(t *testing.T) {
	if err := run([]string{"-quiet", "-v", "-list"}); err == nil {
		t.Error("-quiet -v accepted together")
	}
	if err := run([]string{"-serve-wait", "-list"}); err == nil {
		t.Error("-serve-wait without -metrics-addr accepted")
	}
}

// TestVerboseStreamsSpans checks -v writes span begin/end lines to
// stderr.
func TestVerboseStreamsSpans(t *testing.T) {
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	_, runErr := capture(t, func() error {
		return run([]string{"-impl", "conformant", "-check", "S06", "-v"})
	})
	w.Close()
	os.Stderr = old
	stderr := <-done
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	for _, want := range []string{"begin run/analyze", "end   run/analyze", "property.evaluate"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("verbose stderr missing %q:\n%.500s", want, stderr)
		}
	}
}

func TestTimeoutCancelsCatalogue(t *testing.T) {
	// A 1ns deadline is dead before the pipeline starts: the run must
	// fail with a cancellation, not hang or crash.
	err := run([]string{"-impl", "conformant", "-check", "all", "-timeout", "1ns"})
	if err == nil {
		t.Fatal("expired deadline produced no error")
	}
	if !errors.Is(err, resilience.ErrCancelled) {
		t.Errorf("want ErrCancelled, got %v", err)
	}
	if code := resilience.ExitCode(err); code != resilience.ExitCancelled {
		t.Errorf("exit code %d, want %d", code, resilience.ExitCancelled)
	}
}

// TestLintMode drives the -lint CLI path: report rendering, the
// severity gate's exit classification, manifest integration, and the
// gate-off escape hatch.
func TestLintMode(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-impl", "conformant", "-lint"}) })
	if err != nil {
		t.Fatalf("conformant -lint errored: %v", err)
	}
	if !strings.Contains(out, "model lint: UE/conformant") || !strings.Contains(out, "PC003") {
		t.Errorf("lint report malformed:\n%s", out)
	}

	// srsLTE carries WARNs: the warn gate must trip with exit 6.
	_, err = capture(t, func() error { return run([]string{"-impl", "srsLTE", "-lint", "-lint-gate", "warn"}) })
	if err == nil {
		t.Fatal("warn gate passed on srsLTE")
	}
	if !errors.Is(err, resilience.ErrModelLint) {
		t.Errorf("gate error does not wrap ErrModelLint: %v", err)
	}
	if code := resilience.ExitCode(err); code != resilience.ExitModelLint {
		t.Errorf("exit code %d, want %d", code, resilience.ExitModelLint)
	}

	// -lint-gate none reports without gating.
	if _, err := capture(t, func() error { return run([]string{"-impl", "srsLTE", "-lint", "-lint-gate", "info"}) }); err == nil {
		t.Error("info gate passed on srsLTE (it always carries at least PC003)")
	}
	if _, err := capture(t, func() error { return run([]string{"-impl", "srsLTE", "-lint", "-lint-gate", "none"}) }); err != nil {
		t.Errorf("-lint-gate none still gated: %v", err)
	}
	if err := run([]string{"-impl", "srsLTE", "-lint", "-lint-gate", "fatal"}); err == nil {
		t.Error("unknown -lint-gate value accepted")
	}
}

// TestLintManifest: the manifest of a -lint run carries the lint block.
func TestLintManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.json")
	_, err := capture(t, func() error {
		return run([]string{"-impl", "srsLTE", "-lint", "-quiet", "-manifest", path})
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	m, err := obs.ReadManifestFile(path)
	if err != nil {
		t.Fatalf("reading manifest: %v", err)
	}
	if m.Lint == nil {
		t.Fatal("manifest carries no lint block")
	}
	if m.Lint.Errors != 0 {
		t.Errorf("benign srsLTE manifest reports %d lint errors", m.Lint.Errors)
	}
	if len(m.Lint.Diagnostics) == 0 {
		t.Fatal("lint block lists no diagnostics")
	}
	sawCode := false
	for _, d := range m.Lint.Diagnostics {
		if strings.HasPrefix(d.Code, "PC") && d.Severity != "" && d.Message != "" {
			sawCode = true
		}
	}
	if !sawCode {
		t.Errorf("lint diagnostics malformed: %+v", m.Lint.Diagnostics)
	}
	if m.Config["lint_gate"] != "error" {
		t.Errorf("config lint_gate = %q, want error", m.Config["lint_gate"])
	}
}
