// Command prochecker runs the analysis pipeline from the command line:
// extract a model from an implementation profile, render it, verify
// properties, and validate the headline attacks on the testbed.
//
// Usage:
//
//	prochecker -impl srsLTE -dot            # extracted FSM as Graphviz
//	prochecker -impl OAI -smv               # threat model in SMV syntax
//	prochecker -impl conformant -check S06  # verify one property
//	prochecker -impl srsLTE -check all      # verify the full catalogue
//	prochecker -impl OAI -validate p1       # testbed validation
//	prochecker -list                        # list the 62 properties
package main

import (
	"flag"
	"fmt"
	"os"

	"prochecker"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prochecker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prochecker", flag.ContinueOnError)
	impl := fs.String("impl", string(prochecker.Conformant), "implementation profile: conformant | srsLTE | OAI")
	dot := fs.Bool("dot", false, "print the extracted FSM in Graphviz DOT format")
	smv := fs.Bool("smv", false, "print the threat-instrumented model in SMV syntax")
	logOut := fs.Bool("log", false, "print the information-rich execution log")
	coverage := fs.Bool("coverage", false, "print the NAS-layer coverage")
	check := fs.String("check", "", "verify one property by ID, or 'all'")
	validate := fs.String("validate", "", "validate an attack on the testbed: p1 | p3")
	list := fs.Bool("list", false, "list the property catalogue")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, p := range prochecker.Properties() {
			common := ""
			if p.CommonLTEInspector != "" {
				common = " [LTEInspector-common]"
			}
			fmt.Printf("%-4s %-8s %-26s%s\n     %s\n", p.ID, p.Class, p.Kind, common, p.Text)
		}
		return nil
	}

	implementation := prochecker.Implementation(*impl)

	switch *validate {
	case "":
	case "p1":
		res, err := prochecker.ValidateP1(implementation)
		if err != nil {
			return err
		}
		fmt.Printf("P1 service disruption on %s:\n", implementation)
		fmt.Printf("  stale challenge accepted: %v\n", res.StaleChallengeAccepted)
		fmt.Printf("  keys desynchronised:      %v\n", res.KeysDesynchronised)
		fmt.Printf("  service disrupted:        %v\n", res.ServiceDisrupted)
		fmt.Printf("  attack succeeded:         %v\n", res.Succeeded())
		return nil
	case "p3":
		res, err := prochecker.ValidateP3(implementation)
		if err != nil {
			return err
		}
		fmt.Printf("P3 selective denial on %s:\n", implementation)
		fmt.Printf("  commands dropped:   %d\n", res.CommandsDropped)
		fmt.Printf("  procedure aborted:  %v\n", res.ProcedureAborted)
		fmt.Printf("  GUTI unchanged:     %v\n", res.GUTIUnchangedAtUE)
		fmt.Printf("  attack succeeded:   %v\n", res.Succeeded())
		return nil
	default:
		return fmt.Errorf("unknown -validate %q (want p1 or p3)", *validate)
	}

	if !*dot && !*smv && !*logOut && !*coverage && *check == "" {
		fs.Usage()
		return nil
	}

	a, err := prochecker.Analyze(implementation)
	if err != nil {
		return err
	}
	switch {
	case *dot:
		fmt.Print(a.FSMDOT())
	case *smv:
		fmt.Print(a.SMV())
	case *logOut:
		fmt.Print(a.Log())
	case *coverage:
		fmt.Println(a.Coverage())
	}
	if *check == "" {
		return nil
	}

	var results []prochecker.PropertyResult
	if *check == "all" {
		results, err = a.CheckAll()
		if err != nil {
			return err
		}
	} else {
		r, err := a.CheckProperty(*check)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	attacks := 0
	for _, r := range results {
		verdict := "verified"
		if r.AttackFound {
			verdict = "ATTACK"
			attacks++
		} else if !r.Verified {
			verdict = "inconclusive"
		}
		fmt.Printf("%-4s %-12s %6dms  %s\n", r.ID, verdict, r.Duration.Milliseconds(), r.Detail)
	}
	if len(results) > 1 {
		fmt.Printf("\n%d/%d properties violated on %s\n", attacks, len(results), implementation)
	}
	return nil
}
