// Command prochecker runs the analysis pipeline from the command line:
// extract a model from an implementation profile, render it, verify
// properties, run the conformance suite under fault injection, and
// validate the headline attacks on the testbed.
//
// Usage:
//
//	prochecker -impl srsLTE -dot            # extracted FSM as Graphviz
//	prochecker -impl OAI -smv               # threat model in SMV syntax
//	prochecker -impl conformant -check S06  # verify one property
//	prochecker -impl srsLTE -check all      # verify the full catalogue
//	prochecker -impl OAI -validate p1       # testbed validation
//	prochecker -list                        # list the 62 properties
//
//	# run the conformance suite under a seeded fault-injection adversary
//	prochecker -impl srsLTE -conformance -faults drop=0.05,corrupt=0.02 -seed 42
//
//	# bound any run with a deadline
//	prochecker -impl OAI -check all -timeout 30s
//
//	# pin the catalogue/exploration worker pool (default: GOMAXPROCS)
//	prochecker -impl srsLTE -check all -workers 4
//
// Exit codes follow the resilience taxonomy: 0 clean, 1 internal
// error, 2 cancelled/deadline, 3 fault-induced failure, 4 analysis
// budget exhausted, 5 recovered test-case panic.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"prochecker"
	"prochecker/internal/channel"
	"prochecker/internal/conformance"
	"prochecker/internal/resilience"
	"prochecker/internal/ue"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prochecker:", err)
		fmt.Fprintf(os.Stderr, "prochecker: failure class: %s\n", resilience.Classify(err))
		os.Exit(resilience.ExitCode(err))
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prochecker", flag.ContinueOnError)
	impl := fs.String("impl", string(prochecker.Conformant), "implementation profile: conformant | srsLTE | OAI")
	dot := fs.Bool("dot", false, "print the extracted FSM in Graphviz DOT format")
	smv := fs.Bool("smv", false, "print the threat-instrumented model in SMV syntax")
	logOut := fs.Bool("log", false, "print the information-rich execution log")
	coverage := fs.Bool("coverage", false, "print the NAS-layer coverage")
	check := fs.String("check", "", "verify one property by ID, or 'all'")
	validate := fs.String("validate", "", "validate an attack on the testbed: p1 | p3")
	list := fs.Bool("list", false, "list the property catalogue")
	runConf := fs.Bool("conformance", false, "run the conformance suite and report per-case outcomes")
	faults := fs.String("faults", "", "fault-injection spec for -conformance, e.g. drop=0.05,corrupt=0.02,dup=0.01,reorder=0.1")
	seed := fs.Int64("seed", 1, "base PRNG seed for -faults (runs are reproducible per seed)")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = no deadline)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0),
		"worker pool size for -check: bounds both property-level parallelism and the model checker's exploration pool (1 = fully sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d", *workers)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		for _, p := range prochecker.Properties() {
			common := ""
			if p.CommonLTEInspector != "" {
				common = " [LTEInspector-common]"
			}
			fmt.Printf("%-4s %-8s %-26s%s\n     %s\n", p.ID, p.Class, p.Kind, common, p.Text)
		}
		return nil
	}

	implementation := prochecker.Implementation(*impl)

	if *runConf {
		return runConformance(ctx, implementation, *faults, *seed)
	}

	switch *validate {
	case "":
	case "p1":
		res, err := prochecker.ValidateP1(implementation)
		if err != nil {
			return err
		}
		fmt.Printf("P1 service disruption on %s:\n", implementation)
		fmt.Printf("  stale challenge accepted: %v\n", res.StaleChallengeAccepted)
		fmt.Printf("  keys desynchronised:      %v\n", res.KeysDesynchronised)
		fmt.Printf("  service disrupted:        %v\n", res.ServiceDisrupted)
		fmt.Printf("  attack succeeded:         %v\n", res.Succeeded())
		return nil
	case "p3":
		res, err := prochecker.ValidateP3(implementation)
		if err != nil {
			return err
		}
		fmt.Printf("P3 selective denial on %s:\n", implementation)
		fmt.Printf("  commands dropped:   %d\n", res.CommandsDropped)
		fmt.Printf("  procedure aborted:  %v\n", res.ProcedureAborted)
		fmt.Printf("  GUTI unchanged:     %v\n", res.GUTIUnchangedAtUE)
		fmt.Printf("  attack succeeded:   %v\n", res.Succeeded())
		return nil
	default:
		return fmt.Errorf("unknown -validate %q (want p1 or p3)", *validate)
	}

	if !*dot && !*smv && !*logOut && !*coverage && *check == "" {
		fs.Usage()
		return nil
	}

	a, err := prochecker.AnalyzeContext(ctx, implementation, prochecker.WithWorkers(*workers))
	if err != nil {
		return err
	}
	switch {
	case *dot:
		fmt.Print(a.FSMDOT())
	case *smv:
		fmt.Print(a.SMV())
	case *logOut:
		fmt.Print(a.Log())
	case *coverage:
		fmt.Println(a.Coverage())
	}
	if *check == "" {
		return nil
	}

	var results []prochecker.PropertyResult
	var checkErr error
	if *check == "all" {
		// Graceful degradation: report every completed verdict even when
		// some properties failed or the deadline cut the catalogue short.
		results, checkErr = a.CheckAllContext(ctx)
	} else {
		r, err := a.CheckPropertyContext(ctx, *check)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	attacks := 0
	for _, r := range results {
		verdict := "verified"
		if r.AttackFound {
			verdict = "ATTACK"
			attacks++
		} else if !r.Verified {
			verdict = "inconclusive"
		}
		fmt.Printf("%-4s %-12s %6dms  %s\n", r.ID, verdict, r.Duration.Milliseconds(), r.Detail)
	}
	if len(results) > 1 || checkErr != nil {
		total := len(prochecker.Properties())
		fmt.Printf("\n%d/%d properties violated on %s (%d of %d evaluated)\n",
			attacks, len(results), implementation, len(results), total)
	}
	if checkErr != nil {
		return fmt.Errorf("partial catalogue: %w", checkErr)
	}
	return nil
}

// runConformance executes the implementation's conformance suite —
// optionally under a seeded fault-injection adversary — and reports
// per-case outcomes. Fault-induced case failures are expected results,
// not process failures; only pipeline-level errors (cancellation,
// unknown profile, bad fault spec) are returned.
func runConformance(ctx context.Context, impl prochecker.Implementation, faultSpec string, seed int64) error {
	var profile ue.Profile
	switch impl {
	case prochecker.Conformant:
		profile = ue.ProfileConformant
	case prochecker.SRSLTE:
		profile = ue.ProfileSRS
	case prochecker.OAI:
		profile = ue.ProfileOAI
	default:
		return fmt.Errorf("unknown implementation %q", impl)
	}
	cfg, err := channel.ParseFaultSpec(faultSpec, seed)
	if err != nil {
		return err
	}
	opts := conformance.RunOptions{}
	if cfg.Enabled() {
		opts.Adversary = cfg.AdversaryFactory()
	}
	rep, runErr := conformance.RunSuiteContext(ctx, profile, true, opts)
	fmt.Printf("conformance suite on %s (faults: %s, seed %d)\n\n", impl, cfg, seed)
	for _, res := range rep.Results {
		mark := "PASS"
		detail := ""
		if res.Err != nil {
			mark = "FAIL"
			detail = "  " + firstLine(res.Err.Error())
		}
		fmt.Printf("  %-4s %-44s faults=%-3d%s\n", mark, res.Name, res.Faults, detail)
	}
	fmt.Printf("\n%d/%d cases passed, %d channel fault(s) injected\n",
		rep.Passed(), len(rep.Results), rep.FaultCount())
	if runErr != nil && errors.Is(runErr, resilience.ErrCancelled) {
		return fmt.Errorf("partial suite: %w", runErr)
	}
	return runErr
}

// firstLine trims a multi-line error (e.g. a recovered panic with its
// stack) to its headline for the per-case table.
func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}
