// Command prochecker runs the analysis pipeline from the command line:
// extract a model from an implementation profile, render it, verify
// properties, run the conformance suite under fault injection, and
// validate the headline attacks on the testbed.
//
// Usage:
//
//	prochecker -impl srsLTE -dot            # extracted FSM as Graphviz
//	prochecker -impl OAI -smv               # threat model in SMV syntax
//	prochecker -impl conformant -check S06  # verify one property
//	prochecker -impl srsLTE -check all      # verify the full catalogue
//	prochecker -impl OAI -validate p1       # testbed validation
//	prochecker -list                        # list the 62 properties
//	prochecker -impl srsLTE -lint           # static model diagnostics (PC0xx)
//
//	# run the conformance suite under a seeded fault-injection adversary
//	prochecker -impl srsLTE -conformance -faults drop=0.05,corrupt=0.02 -seed 42
//
//	# bound any run with a deadline
//	prochecker -impl OAI -check all -timeout 30s
//
//	# pin the catalogue/exploration worker pool (default: GOMAXPROCS)
//	prochecker -impl srsLTE -check all -workers 4
//
//	# observability: manifest, live metrics endpoint, verbosity
//	prochecker -impl srsLTE -check all -manifest run.json -metrics-addr :6060
//	prochecker -impl srsLTE -check all -v        # stream span events
//	prochecker -impl srsLTE -check all -quiet    # results only
//
//	# service mode: job queue + HTTP API + content-addressed result store
//	prochecker -serve :8080 -store /var/lib/prochecker
//	prochecker -server http://127.0.0.1:8080 -submit -impl srsLTE -check S06 -wait
//	prochecker -server http://127.0.0.1:8080 -campaign conformant,srsLTE,OAI -faults drop=0.15 -wait
//
//	# crash-safe service: WAL-backed durable queue + taxonomy-driven retries
//	prochecker -serve :8080 -store /var/lib/prochecker -wal /var/lib/prochecker-wal \
//	    -retries 3 -retry-backoff 200ms
//
//	# live observability: tail a campaign over SSE, replay a job's flight
//	prochecker -server http://127.0.0.1:8080 -campaign conformant,srsLTE,OAI -follow
//	prochecker -replay-flight /var/lib/prochecker/flight/j-0001.jsonl
//
//	# fleet mode: coordinator (no local pool) + remote pull workers,
//	# with per-tenant admission quotas in front of submission
//	prochecker -serve :8080 -store /var/lib/prochecker -wal /var/lib/prochecker-wal \
//	    -workers 0 -retries 3 -lease-ttl 30s -quota 'alice=10@2,*=100@50'
//	prochecker -worker -server http://127.0.0.1:8080 -concurrency 2
//
// Exit codes follow the resilience taxonomy: 0 clean, 1 internal
// error, 2 cancelled/deadline, 3 fault-induced failure, 4 analysis
// budget exhausted, 5 recovered test-case panic, 6 model-lint gate,
// 7 retry attempts exhausted (job quarantined), 8 worker lease
// expired.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"prochecker"
	"prochecker/internal/channel"
	"prochecker/internal/conformance"
	"prochecker/internal/jobs"
	"prochecker/internal/lint"
	"prochecker/internal/obs"
	"prochecker/internal/resilience"
	"prochecker/internal/ue"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prochecker:", err)
		fmt.Fprintf(os.Stderr, "prochecker: failure class: %s\n", resilience.Classify(err))
		os.Exit(resilience.ExitCode(err))
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("prochecker", flag.ContinueOnError)
	impl := fs.String("impl", string(prochecker.Conformant), "implementation profile: conformant | srsLTE | OAI")
	dot := fs.Bool("dot", false, "print the extracted FSM in Graphviz DOT format")
	smv := fs.Bool("smv", false, "print the threat-instrumented model in SMV syntax")
	logOut := fs.Bool("log", false, "print the information-rich execution log")
	coverage := fs.Bool("coverage", false, "print the NAS-layer coverage")
	check := fs.String("check", "", "verify one property by ID, or 'all'")
	lintMode := fs.Bool("lint", false, "run the model linter over the extracted FSM and threat composition, print the diagnostics, and gate the exit code on -lint-gate")
	lintGate := fs.String("lint-gate", "error", "with -lint, minimum severity that fails the run: info | warn | error | none")
	noVacuityPrune := fs.Bool("no-vacuity-prune", false, "disable the static vacuity pre-pass: explore every model-checked property even when its trigger is statically unreachable")
	validate := fs.String("validate", "", "validate an attack on the testbed: p1 | p3")
	list := fs.Bool("list", false, "list the property catalogue")
	runConf := fs.Bool("conformance", false, "run the conformance suite and report per-case outcomes")
	faults := fs.String("faults", "", "fault-injection spec applied to the conformance run behind -conformance and analysis modes (-lint, -dot, -check, ...), e.g. drop=0.05,corrupt=0.02,dup=0.01,reorder=0.1")
	seed := fs.Int64("seed", 1, "base PRNG seed for -faults (runs are reproducible per seed)")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = no deadline)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0),
		"worker pool size for -check: bounds both property-level parallelism and the model checker's exploration pool (1 = fully sequential)")
	shards := fs.Int("shards", 1, "shard the model checker's visited set and frontier across N hash-owned shards (rounded down to a power of two, max 64); results are byte-identical at any count")
	memBudget := fs.Int64("mem-budget", 0, "bound the model checker's resident exploration state bytes; cold arena segments spill to disk beyond it (0 = unbounded)")
	snapshotDir := fs.String("snapshot-dir", "", "checkpoint model-checker exploration at level boundaries into this directory and resume from the newest snapshot; with -serve, the root for per-job snapshot directories")
	quiet := fs.Bool("quiet", false, "suppress progress output on stderr (results only)")
	verbose := fs.Bool("v", false, "stream span begin/end events to stderr as they happen")
	manifestPath := fs.String("manifest", "", "write a machine-readable run manifest (JSON) to this path")
	metricsAddr := fs.String("metrics-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address, e.g. :6060 or 127.0.0.1:0")
	serveWait := fs.Bool("serve-wait", false, "with -metrics-addr, keep the metrics endpoint up after the run completes until SIGINT/SIGTERM")
	serveAddr := fs.String("serve", "", "run the batch-analysis job service on this address, e.g. :8080 or 127.0.0.1:0")
	storeDir := fs.String("store", "", "with -serve, content-addressed result store directory (empty = caching disabled)")
	storeMax := fs.Int("store-max", jobs.DefaultStoreEntries, "with -serve -store, LRU bound on stored results")
	queueCap := fs.Int("queue", jobs.DefaultQueueCap, "with -serve, bounded job-queue capacity (full queue answers 429 with Retry-After)")
	walDir := fs.String("wal", "", "with -serve, write-ahead-log directory making the queue crash-safe (empty = in-memory only)")
	retries := fs.Int("retries", 0, "with -serve, attempts per job for retryable failure classes (exhaustion quarantines the job); with -server, HTTP attempts per request; 0 = per-mode default (no job retries, 3 HTTP attempts)")
	retryBackoff := fs.Duration("retry-backoff", 0, "base exponential backoff between retry attempts (jittered; 0 = per-mode default)")
	serverURL := fs.String("server", "", "client mode: job-service base URL, e.g. http://127.0.0.1:8080")
	submit := fs.Bool("submit", false, "with -server, submit one job built from -impl/-faults/-seed/-check")
	campaignList := fs.String("campaign", "", "with -server, submit a campaign matrix: comma-separated implementations crossed with ';'-separated -faults specs")
	wait := fs.Bool("wait", false, "with -submit/-campaign, poll until terminal and print verdicts")
	poll := fs.Duration("poll", 150*time.Millisecond, "with -wait, polling interval")
	follow := fs.Bool("follow", false, "with -submit/-campaign, tail the job/campaign event stream (SSE) live until terminal, then print verdicts")
	eventBuf := fs.Int("event-buf", 0, "with -serve, event-bus ring capacity for SSE streaming and the flight recorder (0 = default)")
	replayFlight := fs.String("replay-flight", "", "replay a per-job flight recording (<store>/flight/<job-id>.jsonl) after verifying its CRC footer, then exit")
	leaseTTL := fs.Duration("lease-ttl", 0, "with -serve, TTL on fleet-worker job leases; a lease that stops heartbeating this long requeues its job (0 = default 30s)")
	quota := fs.String("quota", "", "with -serve, per-tenant admission quotas as comma-separated tenant=burst@rate entries ('*' = default quota), e.g. 'alice=10@2,*=100@50'")
	workerMode := fs.Bool("worker", false, "fleet worker mode: pull jobs from -server over the lease API and run them locally")
	concurrency := fs.Int("concurrency", 1, "with -worker, parallel jobs pulled at once")
	workerID := fs.String("worker-id", "", "with -worker, stable worker identity in leases/metrics (default host-pid)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// -workers 0 is the pure-coordinator form of -serve: no local pool,
	// every job executed by remote fleet workers.
	if *workers < 1 && !(*workers == 0 && *serveAddr != "") {
		return fmt.Errorf("-workers must be >= 1, got %d", *workers)
	}
	if *quiet && *verbose {
		return errors.New("-quiet and -v are mutually exclusive")
	}
	if *serveWait && *metricsAddr == "" {
		return errors.New("-serve-wait requires -metrics-addr")
	}
	if *serveAddr != "" && (*serverURL != "" || *submit || *campaignList != "") {
		return errors.New("-serve is a server mode; it excludes -server/-submit/-campaign")
	}
	if (*submit || *campaignList != "") && *serverURL == "" {
		return errors.New("-submit/-campaign require -server URL")
	}
	if *workerMode {
		if *serverURL == "" {
			return errors.New("-worker requires -server URL")
		}
		if *serveAddr != "" || *submit || *campaignList != "" {
			return errors.New("-worker excludes -serve/-submit/-campaign")
		}
		if *concurrency < 1 {
			return fmt.Errorf("-concurrency must be >= 1, got %d", *concurrency)
		}
	}
	if *submit && *campaignList != "" {
		return errors.New("-submit and -campaign are mutually exclusive")
	}
	if *wait && !*submit && *campaignList == "" {
		return errors.New("-wait requires -submit or -campaign")
	}
	if *follow && !*submit && *campaignList == "" {
		return errors.New("-follow requires -submit or -campaign")
	}
	if *follow && *wait {
		return errors.New("-follow and -wait are mutually exclusive (follow already ends at the terminal state)")
	}
	if *replayFlight != "" {
		return runReplayFlight(*replayFlight)
	}

	if *serveAddr != "" {
		return runServe(serveConfig{
			addr:         *serveAddr,
			storeDir:     *storeDir,
			storeMax:     *storeMax,
			queueCap:     *queueCap,
			workers:      *workers,
			timeout:      *timeout,
			walDir:       *walDir,
			retries:      *retries,
			retryBackoff: *retryBackoff,
			seed:         *seed,
			manifestPath: *manifestPath,
			shards:       *shards,
			memBudget:    *memBudget,
			snapshotDir:  *snapshotDir,
			metricsAddr:  *metricsAddr,
			eventBuf:     *eventBuf,
			leaseTTL:     *leaseTTL,
			quota:        *quota,
		})
	}
	if *workerMode {
		return runWorker(workerConfig{
			serverURL:    *serverURL,
			id:           *workerID,
			concurrency:  *concurrency,
			workers:      *workers,
			shards:       *shards,
			memBudget:    *memBudget,
			snapshotDir:  *snapshotDir,
			retries:      *retries,
			retryBackoff: *retryBackoff,
			seed:         *seed,
			metricsAddr:  *metricsAddr,
		})
	}
	if *submit || *campaignList != "" {
		return runClient(clientConfig{
			serverURL:    *serverURL,
			submit:       *submit,
			campaign:     *campaignList,
			wait:         *wait,
			poll:         *poll,
			impl:         *impl,
			faults:       *faults,
			seed:         *seed,
			check:        *check,
			noPrune:      *noVacuityPrune,
			timeout:      *timeout,
			retries:      *retries,
			retryBackoff: *retryBackoff,
			follow:       *follow,
		})
	}

	level := obs.LevelNormal
	switch {
	case *quiet:
		level = obs.LevelQuiet
	case *verbose:
		level = obs.LevelVerbose
	}

	// The observer is built only when some output depends on it —
	// manifest, metrics endpoint, verbose event stream, or the live
	// progress line for a full catalogue run on an interactive stderr.
	wantProgress := *check == "all" && level == obs.LevelNormal && stderrIsTTY()
	var o *obs.Observer
	if *manifestPath != "" || *metricsAddr != "" || *verbose || wantProgress {
		o = obs.New(obs.WithEventSink(level, stderrSink()))
	}

	ctx := obs.NewContext(context.Background(), o)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *metricsAddr != "" {
		srv, serr := obs.Serve(*metricsAddr, o.Metrics())
		if serr != nil {
			return serr
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "prochecker: serving metrics on http://%s/debug/vars (pprof under /debug/pprof/)\n", srv.Addr)
		if *serveWait {
			defer waitForShutdown(srv.Addr)
		}
	}

	// Deferred manifest write: it runs on every exit path, so a
	// cancelled or failed run still leaves a well-formed manifest with
	// its failure classification and whatever spans were open.
	var verdicts []obs.ManifestVerdict
	var lintManifest *obs.ManifestLint
	if *manifestPath != "" {
		cfg := map[string]string{"impl": *impl, "workers": strconv.Itoa(*workers)}
		if *check != "" {
			cfg["check"] = *check
		}
		if *runConf {
			cfg["conformance"] = "true"
		}
		if *lintMode {
			cfg["lint_gate"] = *lintGate
		}
		if *faults != "" {
			cfg["faults"] = *faults
			cfg["seed"] = strconv.FormatInt(*seed, 10)
		}
		if *timeout > 0 {
			cfg["timeout"] = timeout.String()
		}
		if *shards > 1 {
			cfg["shards"] = strconv.Itoa(*shards)
		}
		if *memBudget > 0 {
			cfg["mem_budget"] = strconv.FormatInt(*memBudget, 10)
		}
		if *snapshotDir != "" {
			cfg["snapshot_dir"] = *snapshotDir
		}
		defer func() {
			m := o.Manifest()
			m.Config = cfg
			m.Verdicts = verdicts
			m.Lint = lintManifest
			if err != nil {
				m.Failure = &obs.ManifestFailure{
					Class:    resilience.Classify(err).String(),
					ExitCode: resilience.ExitCode(err),
					Errors:   errorStrings(err),
				}
			}
			if werr := m.WriteFile(*manifestPath); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	if wantProgress && o != nil {
		stop := startProgress(o.Metrics(), len(prochecker.Properties()))
		defer stop()
	}

	if *list {
		for _, p := range prochecker.Properties() {
			common := ""
			if p.CommonLTEInspector != "" {
				common = " [LTEInspector-common]"
			}
			fmt.Printf("%-4s %-8s %-26s%s\n     %s\n", p.ID, p.Class, p.Kind, common, p.Text)
		}
		return nil
	}

	implementation, err := prochecker.ParseImplementation(*impl)
	if err != nil {
		return err
	}

	if *runConf {
		return runConformance(ctx, implementation, *faults, *seed)
	}

	switch *validate {
	case "":
	case "p1":
		res, err := prochecker.ValidateP1(implementation)
		if err != nil {
			return err
		}
		fmt.Printf("P1 service disruption on %s:\n", implementation)
		fmt.Printf("  stale challenge accepted: %v\n", res.StaleChallengeAccepted)
		fmt.Printf("  keys desynchronised:      %v\n", res.KeysDesynchronised)
		fmt.Printf("  service disrupted:        %v\n", res.ServiceDisrupted)
		fmt.Printf("  attack succeeded:         %v\n", res.Succeeded())
		return nil
	case "p3":
		res, err := prochecker.ValidateP3(implementation)
		if err != nil {
			return err
		}
		fmt.Printf("P3 selective denial on %s:\n", implementation)
		fmt.Printf("  commands dropped:   %d\n", res.CommandsDropped)
		fmt.Printf("  procedure aborted:  %v\n", res.ProcedureAborted)
		fmt.Printf("  GUTI unchanged:     %v\n", res.GUTIUnchangedAtUE)
		fmt.Printf("  attack succeeded:   %v\n", res.Succeeded())
		return nil
	default:
		return fmt.Errorf("unknown -validate %q (want p1 or p3)", *validate)
	}

	if !*dot && !*smv && !*logOut && !*coverage && !*lintMode && *check == "" {
		fs.Usage()
		return nil
	}

	gateSeverity, gateEnabled, err := parseLintGate(*lintGate)
	if err != nil {
		return err
	}

	faultCfg, err := channel.ParseFaultSpec(*faults, *seed)
	if err != nil {
		return err
	}
	analysisOpts := []prochecker.Option{
		prochecker.WithWorkers(*workers), prochecker.WithObserver(o),
		prochecker.WithFaults(faultCfg),
		prochecker.WithShards(*shards), prochecker.WithMemBudget(*memBudget),
		prochecker.WithSnapshotDir(*snapshotDir),
	}
	if *noVacuityPrune {
		analysisOpts = append(analysisOpts, prochecker.WithNoVacuityPrune())
	}
	a, err := prochecker.AnalyzeContext(ctx, implementation, analysisOpts...)
	if err != nil {
		return err
	}
	lintManifest = manifestLint(a.LintReport())
	switch {
	case *dot:
		fmt.Print(a.FSMDOT())
	case *smv:
		fmt.Print(a.SMV())
	case *logOut:
		fmt.Print(a.Log())
	case *coverage:
		fmt.Println(a.Coverage())
	}
	if *lintMode {
		fmt.Print(a.LintReport().Render())
		if gateEnabled {
			if gerr := a.LintGate(gateSeverity); gerr != nil {
				return gerr
			}
		}
	}
	if *check == "" {
		return nil
	}

	var results []prochecker.PropertyResult
	var checkErr error
	if *check == "all" {
		// Graceful degradation: report every completed verdict even when
		// some properties failed or the deadline cut the catalogue short.
		results, checkErr = a.CheckAllContext(ctx)
	} else {
		r, err := a.CheckPropertyContext(ctx, *check)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	attacks := 0
	for _, r := range results {
		verdict := "verified"
		if r.AttackFound {
			verdict = "ATTACK"
			attacks++
		} else if r.Vacuous {
			verdict = "vacuous"
		} else if !r.Verified {
			verdict = "inconclusive"
		}
		verdicts = append(verdicts, obs.ManifestVerdict{
			ID:      r.ID,
			Verdict: manifestVerdict(r),
			DurMS:   obs.DurMS(r.Duration),
			Detail:  r.Detail,
		})
		fmt.Printf("%-4s %-12s %6dms  %s\n", r.ID, verdict, r.Duration.Milliseconds(), r.Detail)
	}
	if len(results) > 1 || checkErr != nil {
		total := len(prochecker.Properties())
		fmt.Printf("\n%d/%d properties violated on %s (%d of %d evaluated)\n",
			attacks, len(results), implementation, len(results), total)
	}
	if checkErr != nil {
		return fmt.Errorf("partial catalogue: %w", checkErr)
	}
	return nil
}

// runConformance executes the implementation's conformance suite —
// optionally under a seeded fault-injection adversary — and reports
// per-case outcomes. Fault-induced case failures are expected results,
// not process failures; only pipeline-level errors (cancellation,
// unknown profile, bad fault spec) are returned.
func runConformance(ctx context.Context, impl prochecker.Implementation, faultSpec string, seed int64) error {
	var profile ue.Profile
	switch impl {
	case prochecker.Conformant:
		profile = ue.ProfileConformant
	case prochecker.SRSLTE:
		profile = ue.ProfileSRS
	case prochecker.OAI:
		profile = ue.ProfileOAI
	default:
		return fmt.Errorf("unknown implementation %q", impl)
	}
	cfg, err := channel.ParseFaultSpec(faultSpec, seed)
	if err != nil {
		return err
	}
	opts := conformance.RunOptions{}
	if cfg.Enabled() {
		opts.Adversary = cfg.AdversaryFactory()
	}
	rep, runErr := conformance.RunSuiteContext(ctx, profile, true, opts)
	fmt.Printf("conformance suite on %s (faults: %s, seed %d)\n\n", impl, cfg, seed)
	for _, res := range rep.Results {
		mark := "PASS"
		detail := ""
		if res.Err != nil {
			mark = "FAIL"
			detail = "  " + firstLine(res.Err.Error())
		}
		fmt.Printf("  %-4s %-44s faults=%-3d%s\n", mark, res.Name, res.Faults, detail)
	}
	fmt.Printf("\n%d/%d cases passed, %d channel fault(s) injected\n",
		rep.Passed(), len(rep.Results), rep.FaultCount())
	if runErr != nil && errors.Is(runErr, resilience.ErrCancelled) {
		return fmt.Errorf("partial suite: %w", runErr)
	}
	return runErr
}

// firstLine trims a multi-line error (e.g. a recovered panic with its
// stack) to its headline for the per-case table.
func firstLine(s string) string {
	for i, r := range s {
		if r == '\n' {
			return s[:i]
		}
	}
	return s
}

// parseLintGate maps the -lint-gate flag onto a lint severity; "none"
// disables gating (print-only mode).
func parseLintGate(s string) (lint.Severity, bool, error) {
	if strings.EqualFold(strings.TrimSpace(s), "none") {
		return 0, false, nil
	}
	sev, err := lint.ParseSeverity(s)
	if err != nil {
		return 0, false, fmt.Errorf("-lint-gate: %w", err)
	}
	return sev, true, nil
}

// manifestLint converts a lint report into the manifest's plain-data
// shape.
func manifestLint(rep *lint.Report) *obs.ManifestLint {
	if rep == nil {
		return nil
	}
	out := &obs.ManifestLint{}
	out.Errors, out.Warnings, out.Infos = rep.Counts()
	for _, d := range rep.Diagnostics {
		out.Diagnostics = append(out.Diagnostics, obs.ManifestDiagnostic{
			Code:     d.Code,
			Severity: d.Severity.String(),
			Ref:      d.Ref.String(),
			Message:  d.Message,
			Fix:      d.Fix,
		})
	}
	return out
}

// manifestVerdict maps a CLI result onto the manifest verdict
// vocabulary.
func manifestVerdict(r prochecker.PropertyResult) string {
	switch {
	case r.AttackFound:
		return "attack"
	case r.Vacuous:
		return "vacuously-holds"
	case r.Verified:
		return "verified"
	default:
		return "inconclusive"
	}
}

// errorStrings flattens an aggregated run error into one message per
// member for the manifest's failure record.
func errorStrings(err error) []string {
	var list resilience.ErrorList
	if errors.As(err, &list) {
		out := make([]string, 0, len(list))
		for _, e := range list {
			out = append(out, firstLine(e.Error()))
		}
		return out
	}
	return []string{firstLine(err.Error())}
}

// stderrIsTTY reports whether stderr is an interactive terminal — the
// gate for the carriage-return progress line, which would garble piped
// or redirected output.
func stderrIsTTY() bool {
	fi, err := os.Stderr.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// stderrSink renders observer events for -v: one line per span
// begin/end (with duration and error) and free-form notes, serialised
// through a mutex because spans end on worker goroutines.
func stderrSink() func(obs.Event) {
	var mu sync.Mutex
	start := time.Now()
	return func(ev obs.Event) {
		mu.Lock()
		defer mu.Unlock()
		at := obs.DurMS(ev.Time.Sub(start))
		switch ev.Kind {
		case "begin":
			fmt.Fprintf(os.Stderr, "[%9.1fms] begin %s\n", at, ev.Span)
		case "end":
			status := ""
			if ev.Err != "" {
				status = "  error: " + firstLine(ev.Err)
			}
			fmt.Fprintf(os.Stderr, "[%9.1fms] end   %s (%.1fms)%s\n", at, ev.Span, obs.DurMS(ev.Dur), status)
		case "note":
			fmt.Fprintf(os.Stderr, "[%9.1fms] %s\n", at, ev.Msg)
		}
	}
}

// startProgress redraws a single carriage-return progress line on
// stderr every 250ms from the live metrics registry; the returned stop
// function clears the line and waits for the drawer to exit.
func startProgress(reg *obs.Registry, total int) func() {
	done := make(chan struct{})
	finished := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(finished)
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				fmt.Fprintf(os.Stderr, "\r%*s\r", 78, "")
				return
			case <-tick.C:
				checked := reg.Counter("report.properties_checked").Value()
				states := reg.Counter("mc.states_explored").Value()
				rate := float64(states) / time.Since(start).Seconds()
				fmt.Fprintf(os.Stderr, "\rchecking %d/%d properties · %d states explored · %.0f states/s ",
					checked, total, states, rate)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// waitForShutdown blocks (from a deferred call, after the run body and
// the manifest write) until SIGINT/SIGTERM so -serve-wait keeps the
// metrics endpoint scrapeable after the run completes.
func waitForShutdown(addr string) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(ch)
	fmt.Fprintf(os.Stderr, "prochecker: run complete; serving metrics on http://%s until interrupted\n", addr)
	<-ch
}
