// Service mode: run the batch-analysis job service (-serve) or act as
// its HTTP client (-submit, -campaign, -wait).
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"prochecker"
	"prochecker/internal/dist"
	"prochecker/internal/jobs"
	"prochecker/internal/obs"
	"prochecker/internal/resilience"
	"prochecker/internal/server"
)

// serveConfig carries the -serve flags.
type serveConfig struct {
	addr         string
	storeDir     string
	storeMax     int
	queueCap     int
	workers      int
	timeout      time.Duration // per-attempt deadline
	walDir       string        // "" disables the write-ahead log
	retries      int           // attempts per job (<= 1 disables retries)
	retryBackoff time.Duration // base retry backoff
	seed         int64         // retry-jitter seed
	manifestPath string        // "" disables the shutdown manifest
	shards       int           // exploration owner-shards per job
	memBudget    int64         // resident state-arena bytes per job (0 = unbounded)
	snapshotDir  string        // root for per-job exploration checkpoints ("" disables)
	metricsAddr  string        // debug endpoint (expvar/pprof/metrics/healthz); "" disables
	eventBuf     int           // event-bus ring capacity (0 = default)
	leaseTTL     time.Duration // fleet-worker lease TTL (0 = jobs.DefaultLeaseTTL)
	quota        string        // per-tenant admission quota spec ("" disables the gate)
}

// runServe hosts the job service until SIGINT/SIGTERM, then drains
// gracefully: submissions get 503, running jobs finish, queued jobs are
// cancelled, and the WAL (when enabled) is checkpointed so a restart
// resumes exactly where the drain left off. A drain that had to cancel
// queued work exits with the taxonomy's cancelled code.
func runServe(cfg serveConfig) (err error) {
	// One registry, one event bus: the observer publishes spans onto the
	// bus, the job service publishes lifecycle transitions, and the
	// HTTP server's SSE endpoints (plus the flight recorder) read it.
	reg := obs.NewRegistry()
	bus := obs.NewBus(cfg.eventBuf, reg)
	o := obs.New(obs.WithRegistry(reg), obs.WithBus(bus))
	base := obs.NewContext(context.Background(), o)

	var store *jobs.Store
	var flightDir string
	if cfg.storeDir != "" {
		var serr error
		if store, serr = jobs.OpenStore(cfg.storeDir, cfg.storeMax); serr != nil {
			return serr
		}
		flightDir = filepath.Join(cfg.storeDir, "flight")
	}
	svc, err := jobs.New(jobs.Config{
		Runner: prochecker.JobRunnerWith(prochecker.JobRunnerConfig{
			Workers:      cfg.workers,
			Shards:       cfg.shards,
			MemBudget:    cfg.memBudget,
			SnapshotRoot: cfg.snapshotDir,
		}),
		Normalize:   prochecker.NormalizeJobSpec,
		Store:       store,
		WALDir:      cfg.walDir,
		Retry:       jobs.RetryPolicy{MaxAttempts: cfg.retries, Backoff: cfg.retryBackoff, Seed: cfg.seed},
		Queue:       cfg.queueCap,
		Workers:     cfg.workers,
		Timeout:     cfg.timeout,
		BaseContext: base,
		Metrics:     o.Metrics(),
		Events:      bus,
		FlightDir:   flightDir,
		LeaseTTL:    cfg.leaseTTL,
		// -workers 0: pure coordinator, all execution on fleet workers.
		NoLocalWorkers: cfg.workers == 0,
	})
	if err != nil {
		return err
	}
	recovery := svc.Recovery()
	if cfg.walDir != "" {
		fmt.Fprintf(os.Stderr,
			"prochecker: wal recovery from %s: %d record(s) replayed, %d result(s) adopted, %d job(s) requeued, %d terminal kept\n",
			cfg.walDir, recovery.Replayed, recovery.Adopted, recovery.Requeued, recovery.Terminal)
	}
	opts := []server.Option{server.WithBus(bus)}
	if cfg.quota != "" {
		quotas, qerr := dist.ParseQuotaSpec(cfg.quota)
		if qerr != nil {
			return qerr
		}
		opts = append(opts, server.WithTenantGate(dist.NewGate(quotas, o.Metrics())))
	}
	srv := server.New(svc, o.Metrics(), opts...)

	// Optional debug endpoint alongside the API: expvar, pprof,
	// Prometheus /metrics, and a /healthz whose readiness flips to 503
	// once the drain starts (orchestrators stop routing to a server
	// that is finishing up, instead of seeing "ok" until the port dies).
	var draining atomic.Bool
	if cfg.metricsAddr != "" {
		dbg, derr := obs.Serve(cfg.metricsAddr, o.Metrics())
		if derr != nil {
			return derr
		}
		defer dbg.Close()
		dbg.SetReadiness(func() error {
			if draining.Load() {
				return errors.New("draining")
			}
			return nil
		})
		fmt.Fprintf(os.Stderr, "prochecker: serving debug endpoint on http://%s (/debug/vars, /debug/pprof/, /metrics, /healthz)\n", dbg.Addr)
	}

	// Deferred shutdown manifest: written on every exit path so an
	// aborted serve run still records its durability story.
	drainCancelled := 0
	checkpointed := false
	if cfg.manifestPath != "" {
		defer func() {
			m := o.Manifest()
			m.Config = map[string]string{
				"serve": cfg.addr, "store": storeLabel(cfg.storeDir), "wal": storeLabel(cfg.walDir),
			}
			if cfg.walDir != "" {
				m.Durability = &obs.ManifestDurability{
					WALDir:          cfg.walDir,
					RecordsReplayed: recovery.Replayed,
					ResultsAdopted:  recovery.Adopted,
					JobsRequeued:    recovery.Requeued,
					TerminalKept:    recovery.Terminal,
					QueuedCancelled: drainCancelled,
					Checkpointed:    checkpointed,
				}
			}
			if err != nil {
				m.Failure = &obs.ManifestFailure{
					Class:    resilience.Classify(err).String(),
					ExitCode: resilience.ExitCode(err),
					Errors:   []string{firstLine(err.Error())},
				}
			}
			if werr := m.WriteFile(cfg.manifestPath); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", cfg.addr, err)
	}
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "prochecker: serving jobs API on http://%s/v1/jobs (store: %s, workers: %d)\n",
		ln.Addr(), storeLabel(cfg.storeDir), cfg.workers)

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case <-sigCtx.Done():
	}

	fmt.Fprintln(os.Stderr, "prochecker: draining — rejecting new jobs, finishing running ones")
	draining.Store(true)
	srv.StartDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	cancelled, drainErr := svc.Drain(drainCtx)
	drainCancelled = cancelled
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	httpSrv.Shutdown(shutCtx) //nolint:errcheck // drain already settled the work
	if drainErr != nil {
		return drainErr
	}
	checkpointed = cfg.walDir != ""
	if checkpointed {
		fmt.Fprintf(os.Stderr, "prochecker: wal checkpointed in %s\n", cfg.walDir)
	}
	fmt.Fprintf(os.Stderr, "prochecker: drained (%d queued job(s) cancelled)\n", cancelled)
	if cancelled > 0 {
		return fmt.Errorf("drain cancelled %d queued job(s): %w", cancelled, resilience.ErrCancelled)
	}
	return nil
}

func storeLabel(dir string) string {
	if dir == "" {
		return "disabled"
	}
	return dir
}

// clientConfig carries the client-mode flags.
type clientConfig struct {
	serverURL    string
	submit       bool
	campaign     string // comma-separated implementation names
	wait         bool
	poll         time.Duration
	impl         string
	faults       string // ';'-separated specs in campaign mode
	seed         int64
	check        string // property selection ("" or "all" = full catalogue)
	noPrune      bool   // disable the static vacuity pre-pass for submitted jobs
	timeout      time.Duration
	retries      int           // HTTP attempts per request (0 = default)
	retryBackoff time.Duration // base backoff between attempts
	follow       bool          // tail the SSE event stream instead of polling
}

// runClient submits work to a remote job service and optionally waits
// for it, mirroring the direct-mode output and exit codes.
func runClient(cfg clientConfig) error {
	ctx := context.Background()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	cl := &server.Client{Base: cfg.serverURL, Retries: cfg.retries, Backoff: cfg.retryBackoff, Seed: cfg.seed}
	props := parsePropertySelection(cfg.check)

	if cfg.campaign != "" {
		spec := prochecker.CampaignSpec{
			Impls:          splitList(cfg.campaign, ","),
			Faults:         splitList(cfg.faults, ";"),
			Seed:           cfg.seed,
			Properties:     props,
			NoVacuityPrune: cfg.noPrune,
		}
		camp, err := cl.SubmitCampaign(ctx, spec)
		if err != nil {
			return err
		}
		fmt.Printf("campaign %s submitted: %d job(s)\n", camp.ID, len(camp.JobIDs))
		switch {
		case cfg.follow:
			if camp, err = cl.FollowCampaign(ctx, camp.ID, printBusEvent()); err != nil {
				return err
			}
		case cfg.wait:
			if camp, err = cl.WaitCampaign(ctx, camp.ID, cfg.poll); err != nil {
				return err
			}
		default:
			return nil
		}
		for _, j := range camp.Jobs {
			attacks := 0
			var lintSum *jobs.LintSummary
			if j.Result != nil {
				attacks = j.Result.Attacks()
				lintSum = j.Result.Lint
			}
			fmt.Printf("%-7s %-28s %-10s cache=%-5v attacks=%d lint=%s\n",
				j.ID, prochecker.JobLabel(j.Spec), j.State, j.CacheHit, attacks, lintSum)
		}
		if camp.Report != "" {
			fmt.Println()
			fmt.Print(camp.Report)
		}
		return terminalError(fmt.Sprintf("campaign %s", camp.ID), string(camp.State), "", camp.ExitCode)
	}

	job, err := cl.SubmitJob(ctx, jobs.Spec{
		Impl:           cfg.impl,
		Faults:         cfg.faults,
		Seed:           cfg.seed,
		Properties:     props,
		NoVacuityPrune: cfg.noPrune,
	})
	if err != nil {
		return err
	}
	fmt.Printf("job %s submitted (state %s, key %.12s…)\n", job.ID, job.State, job.Key)
	switch {
	case cfg.follow:
		if job, err = cl.FollowJob(ctx, job.ID, printBusEvent()); err != nil {
			return err
		}
	case cfg.wait:
		if job, err = cl.WaitJob(ctx, job.ID, cfg.poll); err != nil {
			return err
		}
	default:
		return nil
	}
	if job.Result != nil {
		for _, v := range job.Result.Verdicts {
			verdict := "verified"
			if v.AttackFound {
				verdict = "ATTACK"
			} else if !v.Verified {
				verdict = "inconclusive"
			}
			fmt.Printf("%-4s %-12s %s\n", v.ID, verdict, v.Detail)
		}
		fmt.Printf("\n%d/%d properties violated (cache hit: %v)\n",
			job.Result.Attacks(), len(job.Result.Verdicts), job.CacheHit)
	}
	return terminalError(fmt.Sprintf("job %s", job.ID), string(job.State), job.Error, job.ExitCode)
}

// terminalError converts a terminal job/campaign record back into a
// process error wrapping the matching taxonomy sentinel, so the CLI
// exit code mirrors what the job would have produced locally.
func terminalError(what, state, detail string, exitCode int) error {
	if exitCode == resilience.ExitOK {
		return nil
	}
	kind := resilience.KindInternal
	for k := resilience.KindNone; k <= resilience.KindInternal; k++ {
		if k.ExitCode() == exitCode {
			kind = k
			break
		}
	}
	if detail == "" {
		detail = state
	} else {
		detail = state + ": " + detail
	}
	if sentinel := kind.Sentinel(); sentinel != nil && !errors.Is(sentinel, errInternalSentinel) {
		return fmt.Errorf("%s ended %s: %w", what, detail, sentinel)
	}
	return fmt.Errorf("%s ended %s", what, detail)
}

// errInternalSentinel mirrors resilience's unexported internal anchor:
// Classify treats any unrecognised error as internal, so wrapping is
// unnecessary there.
var errInternalSentinel = resilience.KindInternal.Sentinel()

// parsePropertySelection maps the -check flag onto a job property
// selection: empty or "all" selects the full catalogue; otherwise a
// comma-separated ID list.
func parsePropertySelection(check string) []string {
	if check == "" || check == "all" {
		return nil
	}
	return splitList(check, ",")
}

// printBusEvent renders followed events to stderr (one line each), so
// stdout stays reserved for the final verdict table. Span-begin and
// raw metric events are elided — the tail shows lifecycle, per-level
// exploration progress, completed phases and drop markers.
func printBusEvent() func(obs.BusEvent) {
	var mu sync.Mutex
	return func(ev obs.BusEvent) {
		line, ok := formatBusEvent(ev)
		if !ok {
			return
		}
		mu.Lock()
		fmt.Fprintln(os.Stderr, line)
		mu.Unlock()
	}
}

// formatBusEvent renders one bus event for humans; ok is false for
// event types the live tail elides.
func formatBusEvent(ev obs.BusEvent) (string, bool) {
	scope := ev.Scope
	if scope == "" {
		scope = "-"
	}
	switch ev.Type {
	case "job", "campaign", "snapshot":
		detail := ""
		if a := ev.Attrs["attempt"]; a != "" && a != "1" {
			detail += " attempt=" + a
		}
		if w := ev.Attrs["worker"]; w != "" {
			detail += " worker=" + w
		}
		if ev.Attrs["cache_hit"] == "true" {
			detail += " cache_hit"
		}
		if c := ev.Attrs["class"]; c != "" && c != "none" {
			detail += " class=" + c
		}
		if ev.Err != "" {
			detail += "  " + firstLine(ev.Err)
		}
		return fmt.Sprintf("[%s] %s %s%s", scope, ev.Type, ev.Name, detail), true
	case "lease":
		return fmt.Sprintf("[%s] lease %s %s worker=%s attempt=%s",
			scope, ev.Attrs["lease"], ev.Name, ev.Attrs["worker"], ev.Attrs["attempt"]), true
	case "progress":
		return fmt.Sprintf("[%s] level %d: %s states, frontier %s (%s)",
			scope, ev.Value, ev.Attrs["states"], ev.Attrs["frontier"], ev.Attrs["system"]), true
	case "span_end":
		status := ""
		if ev.Err != "" {
			status = "  error: " + firstLine(ev.Err)
		}
		return fmt.Sprintf("[%s] phase %s (%.1fms)%s", scope, ev.Name, ev.DurMS, status), true
	case "dropped":
		return fmt.Sprintf("[%s] ! %d event(s) dropped (stream fell behind ring retention)", scope, ev.Value), true
	case "note":
		return fmt.Sprintf("[%s] %s", scope, ev.Msg), true
	default: // span_start, metric: too chatty for a live tail
		return "", false
	}
}

// runReplayFlight verifies and prints one job's flight recording — the
// post-mortem path: every event the job emitted, in bus order, without
// re-running anything.
func runReplayFlight(path string) error {
	events, err := jobs.ReadFlight(path)
	if err != nil {
		return err
	}
	for _, ev := range events {
		line, ok := formatBusEvent(ev)
		if !ok {
			// The recording keeps everything; the replay prints
			// everything too, including types the live tail elides.
			data := ev.Name
			if ev.Type == "metric" {
				data = fmt.Sprintf("%s=%d", ev.Name, ev.Value)
			}
			line = fmt.Sprintf("[%s] %s %s", ev.Scope, ev.Type, data)
		}
		fmt.Printf("%6d  %s  %s\n", ev.Seq, ev.Time.Format("15:04:05.000"), line)
	}
	fmt.Printf("\n%d event(s) replayed from %s (crc verified)\n", len(events), path)
	return nil
}

// splitList splits on sep, trimming whitespace and keeping explicit
// empty entries out unless the whole input is empty (campaign fault
// lists use "" to mean one benign column).
func splitList(s, sep string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, sep)
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}
