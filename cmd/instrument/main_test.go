package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunInstrumentsDirectory(t *testing.T) {
	in := t.TempDir()
	out := t.TempDir()
	src := "package p\n\nvar emm_state = 1\n\nfunc recv_x() { y := 2; _ = y }\n"
	if err := os.WriteFile(filepath.Join(in, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-out", out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(out, "x.go"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`[FUNC] recv_x`, `[GLOBAL] emm_state`, `[LOCAL] y`} {
		if !strings.Contains(string(got), want) {
			t.Errorf("instrumented output missing %q", want)
		}
	}
}

func TestRunMissingFlags(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-in", "x"}); err == nil {
		t.Error("missing -out accepted")
	}
}

func TestRunBadInputDir(t *testing.T) {
	if err := run([]string{"-in", "/nonexistent-xyz", "-out", t.TempDir()}); err == nil {
		t.Error("missing input dir accepted")
	}
}
