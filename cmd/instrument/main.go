// Command instrument applies ProChecker's source-level instrumentation to
// a Go package directory: every function is rewritten to print a [FUNC]
// line on entry, [GLOBAL] lines with package-level variable values on
// entry and before every exit, and [LOCAL] lines with first-basic-block
// local values before every exit — the information-rich log format the
// model extractor consumes.
//
// Usage:
//
//	instrument -in ./nas-layer -out ./nas-layer-instrumented
package main

import (
	"flag"
	"fmt"
	"os"

	"prochecker/internal/instrument"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "instrument:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("instrument", flag.ContinueOnError)
	in := fs.String("in", "", "input package directory (required)")
	out := fs.String("out", "", "output directory (required)")
	maxLocals := fs.Int("max-locals", 0, "cap on first-block locals dumped per function (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		fs.Usage()
		return fmt.Errorf("both -in and -out are required")
	}
	rep, err := instrument.Dir(*in, *out, instrument.Options{MaxLocals: *maxLocals})
	if err != nil {
		return err
	}
	fmt.Printf("instrumented %d file(s), %d function(s); %d package-level globals: %v\n",
		rep.Files, rep.Functions, len(rep.Globals), rep.Globals)
	fmt.Printf("local-variable dump sites: %d\n", rep.LocalsDumps)
	return nil
}
