// Command reproduce regenerates every table and figure of the paper's
// evaluation section from the library:
//
//	reproduce -table1       Table I  (attack detection matrix)
//	reproduce -table2       Table II (LTEInspector-common properties)
//	reproduce -fig8         Figure 8 (per-property verification time)
//	reproduce -refinement   RQ2 refinement comparison (incl. Figure 7)
//	reproduce -coverage     NAS coverage (Section VI)
//	reproduce -sqn          SQN staleness analysis (Section VII-A, Fig 5)
//	reproduce -flows        NAS procedure message flows (Figure 1)
//	reproduce -all          everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"prochecker/internal/channel"
	"prochecker/internal/conformance"
	"prochecker/internal/core/extract"
	"prochecker/internal/nas"
	"prochecker/internal/report"
	"prochecker/internal/spec"
	"prochecker/internal/sqn"
	"prochecker/internal/ue"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("reproduce", flag.ContinueOnError)
	table1 := fs.Bool("table1", false, "regenerate Table I")
	table2 := fs.Bool("table2", false, "regenerate Table II")
	fig8 := fs.Bool("fig8", false, "regenerate Figure 8")
	refinement := fs.Bool("refinement", false, "regenerate the RQ2 refinement comparison")
	coverage := fs.Bool("coverage", false, "regenerate the coverage numbers")
	sqnFlag := fs.Bool("sqn", false, "regenerate the SQN staleness analysis")
	flows := fs.Bool("flows", false, "regenerate the NAS procedure flows (Figure 1)")
	verdicts := fs.Bool("verdicts", false, "run the full 62-property catalogue per implementation")
	esm := fs.Bool("esm", false, "extract the ESM (session management) layer separately (challenge C4)")
	deviations := fs.Bool("deviations", false, "diff each open-source profile's FSM against the conformant one")
	all := fs.Bool("all", false, "regenerate everything")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *all {
		*table1, *table2, *fig8, *refinement, *coverage, *sqnFlag, *flows, *esm = true, true, true, true, true, true, true, true
		*deviations = true
	}
	any := false

	if *esm {
		any = true
		if err := printESM(); err != nil {
			return err
		}
	}

	if *flows {
		any = true
		if err := printFlows(); err != nil {
			return err
		}
	}
	if *deviations {
		any = true
		out, err := report.RenderDeviations()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if *sqnFlag {
		any = true
		if err := printSQN(); err != nil {
			return err
		}
	}
	if *coverage {
		any = true
		out, err := report.RenderCoverage()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	if *refinement {
		any = true
		res, err := report.Refinement(ue.ProfileConformant)
		if err != nil {
			return err
		}
		fmt.Println(report.RenderRefinement(res))
	}
	if *table2 {
		any = true
		fmt.Println(report.RenderTableII())
	}
	if *table1 {
		any = true
		profiles := []ue.Profile{ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI}
		rows, err := report.TableI(profiles)
		if err != nil {
			return err
		}
		fmt.Println(report.RenderTableI(rows, profiles))
	}
	if *fig8 {
		any = true
		rows, err := report.Figure8(ue.ProfileConformant)
		if err != nil {
			return err
		}
		fmt.Println(report.RenderFigure8(rows))
	}
	if *verdicts {
		any = true
		for _, p := range []ue.Profile{ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI} {
			vs, err := report.VerifyAllProperties(p)
			if err != nil {
				return err
			}
			fmt.Println(report.RenderVerdicts(p, vs))
		}
	}
	if !any {
		fs.Usage()
	}
	return nil
}

// printFlows reproduces Figure 1: the NAS-layer procedure overview, as
// actual message flows driven through the live implementations.
func printFlows() error {
	env, err := conformance.NewEnv(ue.ProfileConformant, nil)
	if err != nil {
		return err
	}
	if err := env.Attach(); err != nil {
		return err
	}
	cmd, err := env.MME.StartGUTIReallocation()
	if err != nil {
		return err
	}
	env.SendDownlink(cmd)
	page, err := env.MME.Page(false)
	if err != nil {
		return err
	}
	env.SendDownlink(page)
	tau, err := env.UE.StartTAU(conformance.DefaultTAC + 1)
	if err != nil {
		return err
	}
	env.SendUplink(tau)

	fmt.Println("FIGURE 1: NAS layer procedures (as executed by the live implementations)")
	fmt.Println()
	render := func(dir channel.Direction, arrow string) {
		for _, p := range env.Link.Captured(dir) {
			label := "(" + p.Header.String() + ")"
			if p.Header == nas.HeaderPlain {
				if m, err := nas.Unmarshal(p.Payload); err == nil {
					label = string(m.Name())
				}
			}
			fmt.Printf("  UE %s MME  %s\n", arrow, label)
		}
	}
	fmt.Println("uplink:")
	render(channel.Uplink, "-->")
	fmt.Println("downlink:")
	render(channel.Downlink, "<--")
	fmt.Println()
	return nil
}

// printESM demonstrates challenge C4: the same conformance log, dissected
// with the ESM signature sets, yields the session-management machine.
func printESM() error {
	fmt.Println("Per-layer extraction (challenge C4): the ESM machine from the same log")
	fmt.Println()
	rep, err := conformance.RunSuite(ue.ProfileConformant, true)
	if err != nil {
		return err
	}
	emm, err := extract.Model(rep.Log, spec.UESignatures(spec.StyleClosed), extract.Options{Name: "UE/EMM"})
	if err != nil {
		return err
	}
	esm, err := extract.Model(rep.Log, spec.ESMSignatures(spec.StyleClosed), extract.Options{Name: "UE/ESM"})
	if err != nil {
		return err
	}
	s, c, a, tr := emm.Size()
	fmt.Printf("EMM layer: %d states, %d conditions, %d actions, %d transitions\n", s, c, a, tr)
	s, c, a, tr = esm.Size()
	fmt.Printf("ESM layer: %d states, %d conditions, %d actions, %d transitions\n\n", s, c, a, tr)
	for _, t := range esm.Transitions() {
		fmt.Println(" ", t)
	}
	fmt.Println()
	fmt.Println("ESM-layer property verdicts:")
	for _, p := range []ue.Profile{ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI} {
		verdicts, err := report.ESMVerdicts(p)
		if err != nil {
			return err
		}
		attacks := 0
		for _, v := range verdicts {
			if v.Detected {
				attacks++
			}
		}
		fmt.Printf("  %-12s %d/%d violated\n", p, attacks, len(verdicts))
	}
	fmt.Println()
	return nil
}

// printSQN reproduces the Section VII-A analysis and Figure 5's scheme.
func printSQN() error {
	fmt.Println("SQN staleness analysis (TS 33.102 Annex C, Section VII-A)")
	fmt.Println()
	cfg := sqn.DefaultConfig()
	for _, rate := range []float64{5, 10, 20} {
		rep, err := sqn.Aging(cfg, rate)
		if err != nil {
			return err
		}
		fmt.Printf("  IND bits = %d  (SQN array of %d slots): up to %d stale authentication_requests accepted\n",
			rep.INDBits, rep.ArraySize, rep.MaxStaleAccepted)
		fmt.Printf("  at %.0f auth requests/day the stale window is %.1f days\n\n",
			rep.AuthRequestsPerDay, rep.StaleWindowDays)
	}
	for _, captured := range []int{1, 10, 31, 100} {
		accepted, err := sqn.StaleReplayDemo(cfg, captured)
		if err != nil {
			return err
		}
		fmt.Printf("  capture-and-drop %3d vectors -> %2d stale replays accepted\n", captured, accepted)
	}
	withL := sqn.Config{INDBits: sqn.DefaultINDBits, FreshnessLimit: 2}
	accepted, err := sqn.StaleReplayDemo(withL, 31)
	if err != nil {
		return err
	}
	fmt.Printf("  with the optional freshness limit L=2 enforced: %d accepted\n\n", accepted)
	return nil
}
