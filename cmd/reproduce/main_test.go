package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// capture redirects stdout around f so the smoke tests can assert the
// generated report content.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := f()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

// The fast reproduction paths must emit a non-empty report: an empty
// one means a regression silently hollowed out the evaluation section.
func TestReproduceSQNSmoke(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-sqn"}) })
	if err != nil {
		t.Fatalf("run -sqn: %v", err)
	}
	if strings.TrimSpace(out) == "" {
		t.Fatal("-sqn produced an empty report")
	}
	if !strings.Contains(out, "SQN") {
		t.Fatalf("-sqn report does not mention SQN:\n%.400s", out)
	}
}

func TestReproduceTable2Smoke(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-table2"}) })
	if err != nil {
		t.Fatalf("run -table2: %v", err)
	}
	if strings.TrimSpace(out) == "" {
		t.Fatal("-table2 produced an empty report")
	}
	if !strings.Contains(out, "TABLE II") {
		t.Fatalf("-table2 report does not name TABLE II:\n%.400s", out)
	}
}

func TestReproduceFlowsSmoke(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-flows"}) })
	if err != nil {
		t.Fatalf("run -flows: %v", err)
	}
	if strings.TrimSpace(out) == "" {
		t.Fatal("-flows produced an empty report")
	}
}

func TestReproduceNoFlagsShowsUsage(t *testing.T) {
	// With no selection, run must not fail — it prints usage and exits
	// cleanly, mirroring the CLI contract.
	if _, err := capture(t, func() error { return run(nil) }); err != nil {
		t.Fatalf("run with no flags: %v", err)
	}
}
