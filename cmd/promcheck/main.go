// Command promcheck validates a Prometheus text-exposition payload
// (version 0.0.4) read from stdin or a file: TYPE headers, sample
// syntax, duplicate series, and histogram bucket structure. ci.sh
// pipes live /metrics scrapes through it so a formatting regression
// fails the build instead of silently breaking scrapers.
//
// Usage:
//
//	curl -s localhost:9090/metrics | promcheck
//	promcheck scrape.txt
//
// On success it prints the number of samples checked; on a structural
// error it prints the first finding and exits 1 (2 on I/O errors).
package main

import (
	"fmt"
	"io"
	"os"

	"prochecker/internal/obs"
)

func main() {
	var in io.Reader = os.Stdin
	name := "<stdin>"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "promcheck:", err)
			os.Exit(2)
		}
		defer f.Close()
		in, name = f, os.Args[1]
	}
	samples, err := obs.ValidatePrometheusText(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("promcheck: %s: %d sample(s) ok\n", name, samples)
}
