package prochecker

import (
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prochecker/internal/channel"
	"prochecker/internal/lint"
	"prochecker/internal/resilience"
)

// -update regenerates the golden lint reports from the live pipeline:
//
//	go test -run TestLintGolden -update .
var updateGolden = flag.Bool("update", false, "rewrite golden lint reports")

// TestLintGoldenReports pins the full rendered lint report for each
// shipped profile on a benign link. The reports are part of the
// acceptance surface: all three must be clean at ERROR severity, and
// the WARN/INFO diagnostics they do carry are exactly the paper's
// deviation surface (srsLTE and OAI each accept replayed protected
// messages; every profile parks in the NORMAL_SERVICE terminal).
func TestLintGoldenReports(t *testing.T) {
	for _, impl := range Implementations() {
		impl := impl
		t.Run(string(impl), func(t *testing.T) {
			t.Parallel()
			a, err := Analyze(impl)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			rep := a.LintReport()
			if rep == nil {
				t.Fatal("analysis carries no lint report")
			}
			if errs := rep.Count(lint.SeverityError); errs != 0 {
				t.Errorf("benign %s extraction has %d lint ERRORs:\n%s", impl, errs, rep.Render())
			}
			got := rep.Render()
			golden := filepath.Join("testdata", "lint", string(impl)+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("lint report drifted from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestLintGateSeverities drives Analysis.LintGate across the ladder on
// a profile known to carry WARNs but no ERRORs.
func TestLintGateSeverities(t *testing.T) {
	a, err := Analyze(SRSLTE)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if err := a.LintGate(lint.SeverityError); err != nil {
		t.Errorf("error-severity gate failed on a benign extraction: %v", err)
	}
	err = a.LintGate(lint.SeverityWarn)
	if err == nil {
		t.Fatal("warn-severity gate passed despite known WARN diagnostics")
	}
	if !errors.Is(err, resilience.ErrModelLint) {
		t.Errorf("gate error does not wrap ErrModelLint: %v", err)
	}
	if resilience.ExitCode(err) != resilience.ExitModelLint {
		t.Errorf("gate exit code = %d, want %d", resilience.ExitCode(err), resilience.ExitModelLint)
	}
}

// TestLintPC006Regression replays the PR 4 incident: a seeded
// fault-injection adversary (drop=0.2,corrupt=0.1, seed 14) perturbs
// the srsLTE conformance run so the extraction never observes
// guti_reallocation_command. Before this PR, threat.Compose silently
// patched the channel domain; the composition must now surface the
// force-merge as a deterministic PC006 diagnostic before any model
// checking happens.
func TestLintPC006Regression(t *testing.T) {
	cfg, err := channel.ParseFaultSpec("drop=0.2,corrupt=0.1", 14)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(SRSLTE, WithFaults(cfg))
	if err != nil {
		t.Fatalf("Analyze under faults: %v", err)
	}
	rep := a.LintReport()
	if rep == nil {
		t.Fatal("no lint report")
	}
	found := false
	for _, d := range rep.Diagnostics {
		if d.Code == "PC006" && d.Ref.Message == "guti_reallocation_command" {
			found = true
			if d.Severity != lint.SeverityWarn {
				t.Errorf("PC006 severity = %s, want warn", d.Severity)
			}
		}
	}
	if !found {
		t.Fatalf("PC006 for guti_reallocation_command not reported; codes = %v\n%s",
			rep.Codes(), rep.Render())
	}

	// The benign extraction must not carry the diagnostic.
	benign, err := Analyze(SRSLTE)
	if err != nil {
		t.Fatal(err)
	}
	for _, code := range benign.LintReport().Codes() {
		if code == "PC006" {
			t.Error("benign extraction reports PC006")
		}
	}
}

// TestLintReportInJobResult checks the campaign service path: every
// completed job carries the lint summary of its analysis.
func TestLintReportInJobResult(t *testing.T) {
	res, err := RunJob(context.Background(), JobSpec{Impl: "conformant", Properties: []string{"S06"}})
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if res.Lint == nil {
		t.Fatal("job result carries no lint summary")
	}
	if res.Lint.Errors != 0 {
		t.Errorf("conformant job lint errors = %d, want 0", res.Lint.Errors)
	}
	if len(res.Lint.Codes) == 0 {
		t.Error("lint summary lists no codes (expected at least PC003)")
	}
	if got := res.Lint.String(); !strings.HasPrefix(got, "0E/") {
		t.Errorf("LintSummary.String() = %q", got)
	}
}

// TestDiagnosticsDocRegistry keeps docs/diagnostics.md in sync with the
// registered catalogue: every code must have a documented entry carrying
// its title, and the doc must not describe codes that no longer exist.
func TestDiagnosticsDocRegistry(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("docs", "diagnostics.md"))
	if err != nil {
		t.Fatalf("reading docs/diagnostics.md: %v", err)
	}
	text := string(doc)
	registered := make(map[string]bool)
	for _, a := range lint.Analyzers() {
		info := a.Info()
		registered[info.Code] = true
		heading := "## " + info.Code
		if !strings.Contains(text, heading) {
			t.Errorf("docs/diagnostics.md has no %q section", heading)
			continue
		}
		if !strings.Contains(text, info.Title) {
			t.Errorf("docs/diagnostics.md does not carry %s's title %q", info.Code, info.Title)
		}
		if !strings.Contains(text, info.Severity.String()) {
			t.Errorf("docs/diagnostics.md missing the %s severity marker for %s", info.Severity, info.Code)
		}
	}
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, "## "); ok {
			code := strings.Fields(rest)[0]
			if strings.HasPrefix(code, "PC") && !registered[code] {
				t.Errorf("docs/diagnostics.md documents unregistered code %s", code)
			}
		}
	}
}

// BenchmarkLintModel measures the lint pre-check phase alone: the model
// is built once outside the timed loop, so the figure is what the gate
// adds to every pipeline run (recorded as BENCH_lint.json by ci.sh).
func BenchmarkLintModel(b *testing.B) {
	a, err := Analyze(SRSLTE)
	if err != nil {
		b.Fatalf("Analyze: %v", err)
	}
	target := &lint.Target{FSM: a.model.FSM, Composed: a.model.Composed}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := lint.Run(target)
		if rep == nil {
			b.Fatal("nil report")
		}
	}
}
