// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index), plus ablations of
// the design choices called out there. Run with:
//
//	go test -bench=. -benchmem
//
// The headline series is BenchmarkFigure8: per-property verification time
// on the model extracted by ProChecker versus the hand-built LTEInspector
// model — the paper's RQ3 result is that the richer extracted model costs
// only a fraction more.
package prochecker

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"prochecker/internal/channel"
	"prochecker/internal/conformance"
	"prochecker/internal/core/cegar"
	"prochecker/internal/core/extract"
	"prochecker/internal/core/fsmodel"
	"prochecker/internal/core/props"
	"prochecker/internal/core/threat"
	"prochecker/internal/cpv"
	"prochecker/internal/instrument"
	"prochecker/internal/learner"
	"prochecker/internal/ltemodels"
	"prochecker/internal/mc"
	"prochecker/internal/obs"
	"prochecker/internal/report"
	"prochecker/internal/spec"
	"prochecker/internal/sqn"
	"prochecker/internal/testbed"
	"prochecker/internal/ts"
	"prochecker/internal/ue"
)

// --- shared fixtures (built once, outside the timers) ---

var benchModels = map[ue.Profile]*report.Model{}

func benchModel(b *testing.B, p ue.Profile) *report.Model {
	b.Helper()
	if m, ok := benchModels[p]; ok {
		return m
	}
	m, err := report.BuildModel(p)
	if err != nil {
		b.Fatalf("BuildModel(%s): %v", p, err)
	}
	benchModels[p] = m
	return m
}

func benchLTEComposed(b *testing.B) *threat.Composed {
	b.Helper()
	c, err := threat.Compose(threat.Config{
		Name:                 "IMP/LTEInspector",
		UE:                   ltemodels.LTEInspectorUE(),
		MME:                  ltemodels.MME(),
		UEInternal:           []fsmodel.Transition{},
		SuperviseGUTIRealloc: true,
	})
	if err != nil {
		b.Fatalf("Compose: %v", err)
	}
	return c
}

// --- Table I: attack detection (one bench per representative attack) ---

func benchDetect(b *testing.B, profile ue.Profile, propID string, wantAttack bool) {
	b.Helper()
	m := benchModel(b, profile)
	p, ok := props.ByID(propID)
	if !ok {
		b.Fatalf("unknown property %s", propID)
	}
	cfg := cegar.Config{PreCapture: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := cegar.Verify(m.Composed, p.MC(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if (out.Attack != nil) != wantAttack {
			b.Fatalf("%s on %s: attack=%v, want %v", propID, profile, out.Attack != nil, wantAttack)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	cases := []struct {
		attack  string
		profile ue.Profile
		propID  string
		detect  bool
	}{
		{"P1", ue.ProfileConformant, "S06", true},
		{"P3", ue.ProfileConformant, "S19", true},
		{"I1_srs", ue.ProfileSRS, "S08", true},
		{"I1_conformant_clean", ue.ProfileConformant, "S08", false},
		{"I2_oai", ue.ProfileOAI, "S09", true},
		{"I3_srs", ue.ProfileSRS, "S07", true},
		{"I4_srs", ue.ProfileSRS, "S16", true},
		{"numb", ue.ProfileConformant, "S27", true},
		{"paging_hijack", ue.ProfileConformant, "S29", true},
	}
	for _, tc := range cases {
		b.Run(tc.attack, func(b *testing.B) {
			benchDetect(b, tc.profile, tc.propID, tc.detect)
		})
	}
	b.Run("P2_equivalence", func(b *testing.B) {
		q := props.EquivalenceQuery{Scenario: props.ScenarioAuthResponseLinkability}
		for i := 0; i < b.N; i++ {
			res, err := props.EvaluateEquivalence(q, ue.ProfileConformant)
			if err != nil {
				b.Fatal(err)
			}
			if res.Verified {
				b.Fatal("P2 missed")
			}
		}
	})
	b.Run("I5_knowledge", func(b *testing.B) {
		p, _ := props.ByID("V13")
		for i := 0; i < b.N; i++ {
			if res := props.EvaluateKnowledge(*p.Knowledge); res.Verified {
				b.Fatal("V13 verdict flipped")
			}
		}
	})
}

// --- Table II: catalogue assembly ---

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		common := props.CommonWithLTEInspector()
		if len(common) != 14 {
			b.Fatalf("common = %d", len(common))
		}
	}
}

// --- Figure 1: the NAS procedure flows ---

func BenchmarkFigure1AttachFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env, err := conformance.NewEnv(ue.ProfileConformant, nil)
		if err != nil {
			b.Fatal(err)
		}
		if err := env.Attach(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 3: instrument -> extract (the running example) ---

func BenchmarkFigure3Instrument(b *testing.B) {
	src := `package toy

var emm_state = "UE_REGISTERED_INIT"

func recv_attach_accept(mac []byte) bool {
	mac_valid := len(mac) > 0
	if !mac_valid {
		return false
	}
	send_attach_complete()
	emm_state = "UE_REGISTERED"
	return true
}

func send_attach_complete() {}
`
	for i := 0; i < b.N; i++ {
		if _, _, err := instrument.File(src, instrument.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4: the P1 attack end-to-end on the testbed ---

func BenchmarkFigure4P1Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := testbed.ValidateP1(ue.ProfileConformant)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Succeeded() {
			b.Fatal("P1 failed")
		}
	}
}

// --- Figure 5: the SQN array analysis ---

func BenchmarkFigure5SQNScheme(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n, err := sqn.StaleReplayDemo(sqn.DefaultConfig(), 31)
		if err != nil {
			b.Fatal(err)
		}
		if n != 31 {
			b.Fatalf("accepted = %d", n)
		}
	}
}

// --- Figure 6: the P2 linkability experiment ---

func BenchmarkFigure6Linkability(b *testing.B) {
	q := props.EquivalenceQuery{Scenario: props.ScenarioAuthResponseLinkability}
	for i := 0; i < b.N; i++ {
		res, err := props.EvaluateEquivalence(q, ue.ProfileConformant)
		if err != nil {
			b.Fatal(err)
		}
		if res.Verified {
			b.Fatal("linkability missed")
		}
	}
}

// --- Figure 7 / RQ2: refinement checking ---

func BenchmarkFigure7Refinement(b *testing.B) {
	m := benchModel(b, ue.ProfileConformant)
	refined := m.FSM.Clone()
	for _, tr := range threat.DefaultUEInternal() {
		refined.AddTransition(tr)
	}
	coarse := ltemodels.LTEInspectorUE()
	mapping := ltemodels.UEStateMapping()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := fsmodel.CheckRefinement(coarse, refined, mapping)
		if !rep.Refines() {
			b.Fatalf("refinement rejected: %v", rep.Problems())
		}
	}
}

// --- Figure 8 / RQ3: the 14 common properties on both models ---

func BenchmarkFigure8(b *testing.B) {
	pro := benchModel(b, ue.ProfileConformant)
	lte := benchLTEComposed(b)
	cfg := cegar.Config{PreCapture: true}
	for i, p := range props.CommonWithLTEInspector() {
		prop := p
		b.Run(fmt.Sprintf("%02d_%s/ProChecker", i+1, prop.ID), func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				if _, err := cegar.Verify(pro.Composed, prop.MC(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("%02d_%s/LTEInspector", i+1, prop.ID), func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				if _, err := cegar.Verify(lte, prop.MC(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Extractor scalability (Section VI: ~5 min for the largest log) ---

func BenchmarkExtractorConformanceLog(b *testing.B) {
	rep, err := conformance.RunSuite(ue.ProfileConformant, true)
	if err != nil {
		b.Fatal(err)
	}
	sig := spec.UESignatures(spec.StyleClosed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := extract.Model(rep.Log, sig, extract.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractorLargeLog(b *testing.B) {
	sig := spec.UESignatures(spec.StyleClosed)
	for _, blocks := range []int{1_000, 10_000, 100_000} {
		log := extract.SyntheticLog(blocks)
		b.Run(fmt.Sprintf("blocks_%d", blocks), func(b *testing.B) {
			b.ReportMetric(float64(len(log)), "records")
			for i := 0; i < b.N; i++ {
				if _, err := extract.Model(log, sig, extract.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- CPV micro-benchmarks ---

func BenchmarkCPVDeduction(b *testing.B) {
	v := cpv.NewNASVerifier(true)
	for _, m := range spec.DownlinkMessages() {
		v.ObserveGenuine(m)
	}
	target := cpv.MessageTerm(spec.GUTIRealloCommand)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !v.Knowledge().Derivable(target) {
			b.Fatal("observed term not derivable")
		}
	}
}

// --- Ablations (DESIGN.md section 5) ---

// AblationLazyObservation compares the lazy CEGAR observation refinement
// against eager per-message observation bits: same verdicts, very
// different state spaces.
func BenchmarkAblationLazyObservation(b *testing.B) {
	m := benchModel(b, ue.ProfileConformant)
	eager, err := threat.Compose(threat.Config{
		Name:                 "IMP/eager",
		UE:                   m.FSM,
		MME:                  ltemodels.MME(),
		SuperviseGUTIRealloc: true,
		EagerObservationBits: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	p, _ := props.ByID("S31") // replayed attach_request: exercises the observation machinery
	cfg := cegar.Config{PreCapture: true}
	b.Run("lazy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := cegar.Verify(m.Composed, p.MC(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(out.StatesExplored), "states")
		}
	})
	b.Run("eager", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out, err := cegar.Verify(eager, p.MC(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(out.StatesExplored), "states")
		}
	})
}

// AblationPredicateFilter compares extraction with the condition-variable
// vocabulary filter against admitting every local variable: the filter is
// what keeps the model semantic instead of drowning in scratch locals.
func BenchmarkAblationPredicateFilter(b *testing.B) {
	log := extract.SyntheticLog(10_000)
	sig := spec.UESignatures(spec.StyleClosed)
	b.Run("vocabulary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fsm, err := extract.Model(log, sig, extract.Options{})
			if err != nil {
				b.Fatal(err)
			}
			_, c, _, tr := fsm.Size()
			b.ReportMetric(float64(c), "conditions")
			b.ReportMetric(float64(tr), "transitions")
		}
	})
	b.Run("all_locals", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fsm, err := extract.Model(log, sig, extract.Options{
				PredicateFilter: func(string) bool { return true },
			})
			if err != nil {
				b.Fatal(err)
			}
			_, c, _, tr := fsm.Size()
			b.ReportMetric(float64(c), "conditions")
			b.ReportMetric(float64(tr), "transitions")
		}
	})
}

// AblationCompiledRules compares the model checker's compiled-rule
// execution against interpreted guard evaluation.
func BenchmarkAblationCompiledRules(b *testing.B) {
	m := benchModel(b, ue.ProfileConformant)
	sys := m.Composed.System
	init := sys.InitialState()
	b.Run("compiled", func(b *testing.B) {
		rules, err := sys.CompileRules()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			for ri := range rules {
				if rules[ri].Enabled(init) {
					n++
				}
			}
			if n == 0 {
				b.Fatal("no enabled rules")
			}
		}
	})
	b.Run("interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(sys.Successors(init)) == 0 {
				b.Fatal("no successors")
			}
		}
	})
}

// AblationWhiteBoxVsBlackBox compares Algorithm 1's white-box extraction
// against the active-automata-learning baseline the paper argues against:
// same implementation, orders of magnitude apart in queries, and the
// black-box machine has opaque states without predicates.
func BenchmarkAblationWhiteBoxVsBlackBox(b *testing.B) {
	b.Run("whitebox_extraction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := conformance.RunSuite(ue.ProfileConformant, true)
			if err != nil {
				b.Fatal(err)
			}
			fsm, err := extract.Model(rep.Log, spec.UESignatures(spec.StyleClosed), extract.Options{})
			if err != nil {
				b.Fatal(err)
			}
			s, _, _, tr := fsm.Size()
			b.ReportMetric(float64(len(conformance.Cases())), "queries")
			b.ReportMetric(float64(s), "states")
			b.ReportMetric(float64(tr), "transitions")
		}
	})
	b.Run("blackbox_lstar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, stats, err := learner.Learn(
				learner.NewUESUL(ue.ProfileConformant),
				learner.DefaultAlphabet(),
				learner.Options{TestDepth: 2, MaxRounds: 24},
			)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(stats.MembershipQueries), "queries")
			b.ReportMetric(float64(m.NumStates), "states")
			b.ReportMetric(float64(stats.InputSymbolsSent), "inputs")
		}
	})
}

// --- End-to-end pipeline benchmark ---

func BenchmarkPipelineExtractAndCompose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.BuildModel(ue.ProfileSRS); err != nil {
			b.Fatal(err)
		}
	}
}

// Exercise an assortment of mc property kinds on the composed system to
// keep the checker's three algorithms covered by benchmarks.
func BenchmarkModelChecker(b *testing.B) {
	m := benchModel(b, ue.ProfileConformant)
	sys := m.Composed.System
	b.Run("invariant_full_exploration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := mc.Check(sys, mc.Invariant{PropName: "explore", Holds: ts.True{}}, mc.Options{})
			if !res.Verified {
				b.Fatal("exploration failed")
			}
		}
	})
	b.Run("never_fires_violated", func(b *testing.B) {
		p := mc.NeverFires{PropName: "nf", Match: func(n string) bool {
			return n == "mme:guti_realloc:start"
		}}
		for i := 0; i < b.N; i++ {
			res := mc.Check(sys, p, mc.Options{})
			if res.Verified {
				b.Fatal("expected violation")
			}
		}
	})
}

// catalogueMCProperties collects the model-checked subset of the
// 62-property catalogue — the workload of the BENCH_mc.json series.
func catalogueMCProperties(b *testing.B) []mc.Property {
	b.Helper()
	var out []mc.Property
	for _, p := range props.Catalogue() {
		if p.Kind == props.KindMC {
			out = append(out, p.MC())
		}
	}
	if len(out) == 0 {
		b.Fatal("no model-checked catalogue properties")
	}
	return out
}

// BenchmarkCheckAllSequential is the pre-shared-frontier baseline: one
// fresh exploration per property, strictly in order.
func BenchmarkCheckAllSequential(b *testing.B) {
	m := benchModel(b, ue.ProfileConformant)
	sys := m.Composed.System
	list := catalogueMCProperties(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := mc.CheckAllSequential(sys, list, mc.Options{})
		if len(results) != len(list) {
			b.Fatalf("completed %d of %d", len(results), len(list))
		}
	}
}

// BenchmarkCheckAllParallel is the shared-frontier engine on the same
// workload. A fresh engine per iteration means every iteration pays for
// exactly one graph build plus the per-property passes — the honest
// comparison against the baseline's N explorations.
func BenchmarkCheckAllParallel(b *testing.B) {
	m := benchModel(b, ue.ProfileConformant)
	sys := m.Composed.System
	list := catalogueMCProperties(b)
	b.ResetTimer()
	var hits, misses, evictions int
	for i := 0; i < b.N; i++ {
		engine := mc.NewEngine()
		// NoVacuityPrune keeps this the engine-vs-sequential comparison
		// it has always been; the pruner has its own BENCH_sa series.
		results, err := engine.CheckAllContext(context.Background(), sys, list, mc.Options{NoVacuityPrune: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(list) {
			b.Fatalf("completed %d of %d", len(results), len(list))
		}
		h, m, e := engine.CacheCounters()
		hits, misses, evictions = hits+h, misses+m, evictions+e
	}
	b.ReportMetric(float64(hits)/float64(b.N), "cache-hits/op")
	b.ReportMetric(float64(misses)/float64(b.N), "cache-misses/op")
	b.ReportMetric(float64(evictions)/float64(b.N), "cache-evictions/op")
}

// BenchmarkCheckAllParallelWithSubscriber is BenchmarkCheckAllParallel
// with the live observability plane attached: an event bus on the
// context (so per-level exploration progress publishes) and one
// subscriber consuming at full speed, the SSE-streaming steady state.
// ci.sh gates the overhead versus the bare run at 5% in BENCH_obs.json.
func BenchmarkCheckAllParallelWithSubscriber(b *testing.B) {
	m := benchModel(b, ue.ProfileConformant)
	sys := m.Composed.System
	list := catalogueMCProperties(b)

	bus := obs.NewBus(obs.DefaultBusCapacity, nil)
	o := obs.New(obs.WithBus(bus))
	ctx := obs.NewContext(context.Background(), o)
	ctx = obs.WithScope(ctx, "j-bench")
	subCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sub := bus.Subscribe(bus.Seq() + 1)
	defer sub.Close()
	consumed := make(chan int64, 1)
	go func() {
		var n int64
		for {
			if _, err := sub.Next(subCtx); err != nil {
				consumed <- n
				return
			}
			n++
		}
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := mc.NewEngine()
		results, err := engine.CheckAllContext(ctx, sys, list, mc.Options{NoVacuityPrune: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(list) {
			b.Fatalf("completed %d of %d", len(results), len(list))
		}
	}
	b.StopTimer()
	cancel()
	n := <-consumed
	if b.N > 0 && n == 0 && bus.Seq() > 0 {
		b.Fatal("subscriber consumed no events despite publishes")
	}
	b.ReportMetric(float64(bus.Seq())/float64(b.N), "events/op")
}

// --- BENCH_sa.json series: static vacuity pre-pruning ---

// benchVacuityCatalogue runs the full MC catalogue over the plain
// LTEInspector composition (no GUTI-realloc supervision — the same
// system the mc differential tests pin) on a warm engine: the graph
// cache is primed before the timer, so both variants measure the
// steady-state per-catalogue cost and the delta is exactly what the
// static pre-pass saves in property passes. This is the workload where
// vacuity bites hardest — the hand-built vocabulary leaves most of the
// model-checked catalogue with statically-unfireable triggers.
func benchVacuityCatalogue(b *testing.B, opts mc.Options) {
	c, err := threat.Compose(threat.Config{
		Name: "IMP/LTEInspector-plain",
		UE:   ltemodels.LTEInspectorUE(),
		MME:  ltemodels.MME(),
	})
	if err != nil {
		b.Fatalf("Compose: %v", err)
	}
	sys := c.System
	list := catalogueMCProperties(b)
	engine := mc.NewEngine()
	if _, err := engine.CheckAllContext(context.Background(), sys, list, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	pruned := 0
	for i := 0; i < b.N; i++ {
		results, err := engine.CheckAllContext(context.Background(), sys, list, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(list) {
			b.Fatalf("completed %d of %d", len(results), len(list))
		}
		pruned = 0
		for _, r := range results {
			if r.Vacuous {
				pruned++
			}
		}
	}
	b.ReportMetric(float64(pruned), "pruned/op")
}

// BenchmarkCheckAllVacuityUnpruned is the escape-hatch run: every
// catalogue property is explored. Workers is pinned to 1 in both
// variants so the measured wall time equals the total property-pass
// work — with a parallel pool the pruner's savings hide in scheduler
// slack and the comparison measures load balancing instead.
func BenchmarkCheckAllVacuityUnpruned(b *testing.B) {
	benchVacuityCatalogue(b, mc.Options{Workers: 1, NoVacuityPrune: true})
}

// BenchmarkCheckAllVacuityPruned is the default pipeline: the abstract
// reachability pre-pass discharges statically-vacuous properties before
// the checker spends passes on them. ci.sh gates the speedup versus the
// unpruned run at 1.15x in BENCH_sa.json.
func BenchmarkCheckAllVacuityPruned(b *testing.B) {
	benchVacuityCatalogue(b, mc.Options{Workers: 1})
}

// BenchmarkCEGARVerifyAll times the full MC ⇄ CPV loop over the same
// property set, where unrefined properties share one cached exploration
// via lazy clone-on-refine.
func BenchmarkCEGARVerifyAll(b *testing.B) {
	m := benchModel(b, ue.ProfileConformant)
	list := catalogueMCProperties(b)
	cfg := cegar.Config{PreCapture: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := cegar.VerifyAllContext(context.Background(), m.Composed, list, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(outs) != len(list) {
			b.Fatalf("completed %d of %d", len(outs), len(list))
		}
	}
}

// --- BENCH_dist.json series: sharded, disk-spillable exploration ---

// benchExploreOnce runs one full state-space exploration (a trivially
// true invariant, so nothing short-circuits) under the given options
// and returns states explored plus peak resident state bytes from the
// run's private metrics registry.
func benchExploreOnce(b *testing.B, sys *ts.System, opts mc.Options) (states, resident int64) {
	b.Helper()
	o := obs.New()
	ctx := obs.NewContext(context.Background(), o)
	res, err := mc.NewEngine().CheckContext(ctx, sys,
		mc.Invariant{PropName: "explore", Holds: ts.True{}}, opts)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Verified {
		b.Fatal("exploration failed")
	}
	return int64(res.StatesExplored), o.Metrics().Gauge("mc.peak_resident_state_bytes").Value()
}

// BenchmarkExploreSharded sweeps the shard count over a full in-memory
// exploration of the composed model, reporting throughput and the
// arena's resident footprint per state. Compare bytes/state against
// BenchmarkStateBytesMapBaseline for the storage-layer win.
func BenchmarkExploreSharded(b *testing.B) {
	m := benchModel(b, ue.ProfileConformant)
	sys := m.Composed.System
	for _, shards := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("shards_%d", shards), func(b *testing.B) {
			var states, resident int64
			for i := 0; i < b.N; i++ {
				states, resident = benchExploreOnce(b, sys, mc.Options{Workers: 4, Shards: shards})
			}
			b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
			b.ReportMetric(float64(resident)/float64(states), "bytes/state")
		})
	}
}

// BenchmarkExploreSpill explores under a deliberately tight memory
// budget so cold arena segments go to disk: resident bytes/state shows
// the bounded-memory footprint, spilled-bytes/state what moved out.
func BenchmarkExploreSpill(b *testing.B) {
	m := benchModel(b, ue.ProfileConformant)
	sys := m.Composed.System
	dir := b.TempDir()
	opts := mc.Options{
		Workers:           4,
		Shards:            4,
		MemBudget:         1 << 15,
		SpillDir:          dir,
		SpillSegmentBytes: 1 << 12,
	}
	var states, resident int64
	for i := 0; i < b.N; i++ {
		states, resident = benchExploreOnce(b, sys, opts)
	}
	b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/sec")
	b.ReportMetric(float64(resident)/float64(states), "bytes/state")
}

// baselineSink keeps the baseline representation live across the
// second MemStats read so the allocator cannot reclaim it mid-measure.
var baselineSink struct {
	stripes [64]map[string]int32
	states  []ts.State
}

// BenchmarkStateBytesMapBaseline measures the storage layer this PR
// replaced — a 64-stripe string-keyed visited map plus a []ts.State
// clone per interned state — by BFS-exploring the same composed model
// and reading the live-heap delta per state. The arena representation
// (BenchmarkExploreSharded's bytes/state) stores each state once, in
// place, with a 12-byte open-addressing slot instead of a map entry
// plus a second string copy of the state bytes.
func BenchmarkStateBytesMapBaseline(b *testing.B) {
	m := benchModel(b, ue.ProfileConformant)
	sys := m.Composed.System
	var perState float64
	for i := 0; i < b.N; i++ {
		baselineSink.stripes = [64]map[string]int32{}
		baselineSink.states = nil
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)

		stripes := [64]map[string]int32{}
		for k := range stripes {
			stripes[k] = make(map[string]int32)
		}
		stripe := func(s ts.State) uint64 {
			h := uint64(14695981039346656037)
			for _, v := range s {
				h = (h ^ uint64(v)) * 1099511628211
			}
			return h & 63
		}
		var states []ts.State
		intern := func(s ts.State) (int32, bool) {
			mp := stripes[stripe(s)]
			if id, ok := mp[string(s)]; ok {
				return id, false
			}
			id := int32(len(states))
			states = append(states, s.Clone())
			mp[s.Key()] = id
			return id, true
		}
		intern(sys.InitialState())
		for head := 0; head < len(states); head++ {
			for _, succ := range sys.Successors(states[head]) {
				intern(succ.State)
			}
		}

		baselineSink.stripes = stripes
		baselineSink.states = states
		runtime.GC()
		runtime.ReadMemStats(&m1)
		perState = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(len(states))
	}
	b.ReportMetric(perState, "bytes/state")
}

// BenchmarkConformanceFaults measures the hardened conformance path
// under the seeded drop+corrupt adversary mix — the BENCH_faults.json
// baseline series. The run must complete every case (faults surface as
// per-case failures, never as suite aborts), so the benchmark also
// guards the no-crash contract while timing it.
func BenchmarkConformanceFaults(b *testing.B) {
	cfg := channel.FaultConfig{Seed: 42, Drop: 0.10, Corrupt: 0.10}
	suiteLen := len(conformance.SuiteFor(ue.ProfileSRS, true))
	for i := 0; i < b.N; i++ {
		rep, err := conformance.RunSuiteContext(context.Background(), ue.ProfileSRS, true,
			conformance.RunOptions{Adversary: cfg.AdversaryFactory()})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Results) != suiteLen {
			b.Fatalf("suite ran %d of %d cases", len(rep.Results), suiteLen)
		}
	}
}

// BenchmarkConformanceBenign is the control series: the same suite on a
// clean link, isolating the fault decorators' overhead.
func BenchmarkConformanceBenign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := conformance.RunSuiteContext(context.Background(), ue.ProfileSRS, true, conformance.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Passed() != len(rep.Results) {
			b.Fatalf("benign suite failed %d case(s)", len(rep.Results)-rep.Passed())
		}
	}
}
