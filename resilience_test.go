package prochecker

import (
	"context"
	"errors"
	"testing"

	"prochecker/internal/resilience"
)

// TestCheckAllContextCancelledPromptly is the acceptance check:
// CheckAllContext with an already-cancelled context returns promptly
// with ErrCancelled and whatever results completed (none, here).
func TestCheckAllContextCancelledPromptly(t *testing.T) {
	a, err := Analyze(Conformant)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := a.CheckAllContext(ctx)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if len(results) != 0 {
		t.Errorf("already-cancelled catalogue produced %d results", len(results))
	}
	if resilience.ExitCode(err) != resilience.ExitCancelled {
		t.Errorf("exit code %d, want %d", resilience.ExitCode(err), resilience.ExitCancelled)
	}
}

// TestCheckAllContextMidRunCancellation cancels after the first
// property completes and expects partial results plus the typed error.
func TestCheckAllContextMidRunCancellation(t *testing.T) {
	a, err := Analyze(Conformant)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Warm exactly one property into the cache, then cancel: the walk
	// must return it and stop at the second.
	if _, err := a.CheckPropertyContext(ctx, "S01"); err != nil {
		t.Fatalf("CheckPropertyContext(S01): %v", err)
	}
	cancel()
	results, err := a.CheckAllContext(ctx)
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
	if len(results) != 0 {
		// The catalogue walk checks ctx before each property, so even
		// the cached S01 is not re-reported once ctx is dead.
		t.Logf("note: %d cached results returned before cancellation", len(results))
	}
}

// TestAnalyzeContextCancelled threads cancellation through the
// conformance suite underneath model extraction.
func TestAnalyzeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeContext(ctx, SRSLTE); !errors.Is(err, ErrCancelled) {
		t.Fatalf("want ErrCancelled, got %v", err)
	}
}

// TestCheckAllStillCompletes guards the graceful-degradation contract
// on the happy path: the full catalogue completes with no error and all
// 62 results.
func TestCheckAllStillCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalogue run")
	}
	a, err := Analyze(Conformant)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	results, err := a.CheckAll()
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}
	if len(results) != len(Properties()) {
		t.Errorf("completed %d of %d properties", len(results), len(Properties()))
	}
}
