package prochecker

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// metricSites is what the source scan collects: every metric name (or
// name family) registered anywhere in non-test code.
type metricSites struct {
	static   map[string]bool // full literal names: "jobs.submitted"
	prefixes map[string]bool // dynamic suffix families: "jobs.terminal."
	labelled map[string]bool // Labeled/LabeledStr bases: "mc.frontier_width"
}

// scanMetricSites walks every non-test .go file and records the first
// argument of each Counter/Gauge/Histogram registration: a plain string
// literal, a `"prefix." + expr` concatenation, or an obs.Labeled /
// obs.LabeledStr call (whose own literal first argument is the family
// base).
func scanMetricSites(t *testing.T, root string) metricSites {
	t.Helper()
	sites := metricSites{
		static:   make(map[string]bool),
		prefixes: make(map[string]bool),
		labelled: make(map[string]bool),
	}
	record := func(arg ast.Expr) {
		switch a := arg.(type) {
		case *ast.BasicLit:
			if a.Kind != token.STRING {
				return
			}
			name, err := strconv.Unquote(a.Value)
			if err != nil {
				return
			}
			sites.static[name] = true
		case *ast.BinaryExpr:
			// "prefix." + runtimeValue — a dynamic suffix family.
			if a.Op != token.ADD {
				return
			}
			if lit, ok := a.X.(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if prefix, err := strconv.Unquote(lit.Value); err == nil && strings.HasSuffix(prefix, ".") {
					sites.prefixes[prefix] = true
				}
			}
		case *ast.CallExpr:
			// obs.Labeled(base, ...) / obs.LabeledStr(base, ...).
			fn, ok := a.Fun.(*ast.SelectorExpr)
			if !ok || (fn.Sel.Name != "Labeled" && fn.Sel.Name != "LabeledStr") || len(a.Args) == 0 {
				return
			}
			if lit, ok := a.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if base, err := strconv.Unquote(lit.Value); err == nil {
					sites.labelled[base] = true
				}
			}
		}
	}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); path != root && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, perr := parser.ParseFile(token.NewFileSet(), path, nil, 0)
		if perr != nil {
			return perr
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Counter", "Gauge", "Histogram":
				record(call.Args[0])
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatalf("scanning sources: %v", err)
	}
	// The Labeled bases register through Counter/Gauge/Histogram calls
	// too (as *ast.CallExpr args); drop them from static if a literal
	// elsewhere duplicated one.
	return sites
}

// docMetricEntries parses docs/metrics.md: every table row whose first
// column is a backticked metric name.
func docMetricEntries(t *testing.T) map[string]bool {
	t.Helper()
	doc, err := os.ReadFile(filepath.Join("docs", "metrics.md"))
	if err != nil {
		t.Fatalf("reading docs/metrics.md: %v", err)
	}
	entries := make(map[string]bool)
	for _, line := range strings.Split(string(doc), "\n") {
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		rest := line[len("| `"):]
		end := strings.IndexByte(rest, '`')
		if end < 0 {
			t.Errorf("docs/metrics.md: unterminated metric name in row %q", line)
			continue
		}
		entries[rest[:end]] = true
	}
	if len(entries) == 0 {
		t.Fatal("docs/metrics.md has no metric table rows")
	}
	return entries
}

// docCovers maps a registration site onto its expected doc entry.
func docCovers(entries map[string]bool, name string) bool {
	if entries[name] {
		return true
	}
	// A labelled base is documented with its label suffix:
	// mc.frontier_width -> `mc.frontier_width{shard=<k>}`.
	for e := range entries {
		if open := strings.IndexByte(e, '{'); open > 0 && e[:open] == name {
			return true
		}
	}
	return false
}

// TestMetricsDocRegistry keeps docs/metrics.md in sync with the
// registered instruments, in both directions: every registration site
// must be documented, and every documented entry must still exist in
// the code.
func TestMetricsDocRegistry(t *testing.T) {
	sites := scanMetricSites(t, ".")
	entries := docMetricEntries(t)

	for name := range sites.static {
		if !docCovers(entries, name) {
			t.Errorf("metric %q is registered but not documented in docs/metrics.md", name)
		}
	}
	for prefix := range sites.prefixes {
		found := false
		for e := range entries {
			if strings.HasPrefix(e, prefix) && strings.Contains(e, "<") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("dynamic metric family %q<...> is registered but not documented in docs/metrics.md", prefix)
		}
	}
	for base := range sites.labelled {
		if !docCovers(entries, base) {
			t.Errorf("labelled metric family %q is registered but not documented in docs/metrics.md", base)
		}
	}

	// Reverse: no stale doc entries.
	for entry := range entries {
		name := entry
		if open := strings.IndexByte(name, '{'); open > 0 {
			name = name[:open]
			if sites.labelled[name] {
				continue
			}
			t.Errorf("docs/metrics.md documents labelled family %q which no code registers", entry)
			continue
		}
		if dot := strings.Index(name, ".<"); dot > 0 {
			if sites.prefixes[name[:dot+1]] {
				continue
			}
			t.Errorf("docs/metrics.md documents dynamic family %q which no code registers", entry)
			continue
		}
		if !sites.static[name] {
			t.Errorf("docs/metrics.md documents %q which no code registers", entry)
		}
	}
}
