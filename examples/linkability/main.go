// linkability demonstrates the P2 privacy attack (Figure 6): an adversary
// who replays a captured authentication_request to every UE in a cell can
// tell the victim apart — it answers authentication_response while every
// other device answers auth_mac_failure. The distinguishability is
// established with the cryptographic protocol verifier's observational-
// equivalence query and then confirmed against live implementations of
// all three profiles.
package main

import (
	"fmt"
	"log"

	"prochecker/internal/core/props"
	"prochecker/internal/cpv"
	"prochecker/internal/spec"
	"prochecker/internal/ue"
)

func main() {
	log.SetFlags(0)
	fmt.Println("=== P2: Linkability using authentication_response (Figure 6) ===")
	fmt.Println()

	// Symbolic side: the CPV's diff-equivalence query. The adversary's
	// knowledge contains a pre-captured challenge (phase 1 of Figure 4);
	// the two processes are the victim and any other UE.
	verifier := cpv.NewNASVerifier(true)
	probe := cpv.Probe{Label: "replayed authentication_request", Term: cpv.MessageTerm(spec.AuthRequest)}
	victim := func(cpv.Probe) string { return string(spec.AuthResponse) }
	other := func(cpv.Probe) string { return string(spec.AuthMACFailure) }
	if p, distinguishable := verifier.Distinguish([]cpv.Probe{probe}, victim, other); distinguishable {
		fmt.Printf("CPV query: processes are DISTINGUISHABLE via %q\n", p.Label)
		fmt.Println("  victim  -> authentication_response")
		fmt.Println("  others  -> auth_mac_failure")
	} else {
		log.Fatal("CPV query unexpectedly found the processes equivalent")
	}
	fmt.Println()

	// Concrete side: the same experiment against live implementations.
	fmt.Println("Validation against live implementations:")
	query := props.EquivalenceQuery{Scenario: props.ScenarioAuthResponseLinkability}
	for _, profile := range []ue.Profile{ue.ProfileConformant, ue.ProfileSRS, ue.ProfileOAI} {
		res, err := props.EvaluateEquivalence(query, profile)
		if err != nil {
			log.Fatalf("%s: %v", profile, err)
		}
		verdict := "linkable (attack)"
		if res.Verified {
			verdict = "unlinkable"
		}
		fmt.Printf("  %-12s %-18s victim=%q bystander=%q\n", profile, verdict, res.VictimResponse, res.OtherResponse)
	}
	fmt.Println()
	fmt.Println("The root cause is P1's: the Annex C SQN scheme accepts out-of-order")
	fmt.Println("sequence numbers, and the optional freshness limit L is unimplemented.")
	fmt.Println("The same scheme ships in 5G (TS 24.501), so the 5G rollout inherits P2.")
}
