// Quickstart: run the complete ProChecker pipeline on one implementation
// profile — conformance-driven extraction, threat composition, and the
// verification of a single property (the paper's P1 property, S06) — then
// print the extracted model's shape and the verdict.
package main

import (
	"fmt"
	"log"

	"prochecker"
)

func main() {
	log.SetFlags(0)

	// 1. Analyze runs the instrumented conformance suite, extracts the
	//    FSM with Algorithm 1, and composes the threat model.
	analysis, err := prochecker.Analyze(prochecker.SRSLTE)
	if err != nil {
		log.Fatalf("analyze: %v", err)
	}
	states, conditions, actions, transitions := analysis.ModelSize()
	fmt.Printf("extracted UE model for %s: %d states, %d conditions, %d actions, %d transitions\n",
		analysis.Implementation(), states, conditions, actions, transitions)
	fmt.Printf("conformance run: %s\n\n", analysis.Coverage())

	// 2. Verify the P1 property: "the UE only authenticates with an SQN
	//    greater than the previously accepted one".
	res, err := analysis.CheckProperty("S06")
	if err != nil {
		log.Fatalf("check: %v", err)
	}
	fmt.Printf("property %s: %s\n", res.ID, res.Text)
	switch {
	case res.AttackFound:
		fmt.Printf("VIOLATED — realizable attack found (%s, %v)\n", res.Detail, res.Duration.Round(1e6))
	case res.Verified:
		fmt.Printf("verified (%s)\n", res.Detail)
	default:
		fmt.Printf("inconclusive (%s)\n", res.Detail)
	}

	// 3. Validate the corresponding end-to-end attack on the in-process
	//    testbed (Figure 4's two phases).
	val, err := prochecker.ValidateP1(prochecker.SRSLTE)
	if err != nil {
		log.Fatalf("validate: %v", err)
	}
	fmt.Printf("\ntestbed validation: stale challenge accepted=%v, keys desynchronised=%v, service disrupted=%v\n",
		val.StaleChallengeAccepted, val.KeysDesynchronised, val.ServiceDisrupted)
}
