// attack_replay walks through the P1 service-disruption attack of
// Figure 4 step by step against a live implementation, printing every
// phase: the capture of an authentication_request by a malicious UE, the
// victim's normal attach, the replay of the stale challenge, the key
// desynchronisation, and the resulting denial of service. It then shows
// the countermeasure: enforcing the optional Annex C freshness limit L.
package main

import (
	"fmt"
	"log"

	"prochecker/internal/channel"
	"prochecker/internal/conformance"
	"prochecker/internal/nas"
	"prochecker/internal/spec"
	"prochecker/internal/sqn"
	"prochecker/internal/ue"
)

func main() {
	log.SetFlags(0)
	fmt.Println("=== P1: Service disruption using authentication_request (Figure 4) ===")
	fmt.Println()

	env, err := conformance.NewEnv(ue.ProfileConformant, nil)
	if err != nil {
		log.Fatal(err)
	}

	// --- Phase 1: capture ---------------------------------------------
	fmt.Println("Phase 1: the adversary captures an authentication_request.")
	drop := &channel.DropFilter{
		Dir:   channel.Downlink,
		Match: func(p nas.Packet) bool { return p.Header == nas.HeaderPlain },
		Limit: 1,
	}
	env.Link.SetAdversary(drop)
	req, err := env.UE.StartAttach()
	if err != nil {
		log.Fatal(err)
	}
	env.SendUplink(req)
	stale := env.Link.Captured(channel.Downlink)[0]
	fmt.Printf("  captured challenge (%d bytes) — in a real deployment this can be days old:\n", len(stale.Payload))
	fmt.Printf("  the %d-slot SQN array accepts up to %d stale vectors\n\n",
		uint64(1)<<sqn.DefaultINDBits, (uint64(1)<<sqn.DefaultINDBits)-1)

	// --- Victim attaches normally -------------------------------------
	env.Link.SetAdversary(nil)
	retry, err := env.MME.StartReauthentication()
	if err != nil {
		log.Fatal(err)
	}
	env.SendDownlink(retry)
	fmt.Printf("victim attached: state=%s GUTI=%#x, UE and MME share keys: %v\n\n",
		env.UE.State(), env.UE.GUTI(), env.UE.Keys() == env.MME.Keys())
	keysBefore := env.UE.Keys()

	// --- Phase 2: replay ----------------------------------------------
	fmt.Println("Phase 2: the adversary replays the stale challenge to the victim.")
	replies := env.UE.HandleDownlink(stale)
	for _, r := range replies {
		if m, err := nas.Unmarshal(r.Payload); err == nil {
			fmt.Printf("  victim answered with %s — the stale SQN was ACCEPTED\n", m.Name())
			if m.Name() != spec.AuthResponse {
				log.Fatalf("unexpected response %s", m.Name())
			}
		}
	}
	fmt.Printf("  session keys regenerated: %v; UE and MME now disagree: %v\n\n",
		env.UE.Keys() != keysBefore, env.UE.Keys() != env.MME.Keys())

	// --- Consequence ----------------------------------------------------
	fmt.Println("Consequence: genuine network traffic is now discarded.")
	info, err := env.MME.SendEMMInformation()
	if err != nil {
		log.Fatal(err)
	}
	if got := env.UE.HandleDownlink(info); len(got) == 0 {
		fmt.Println("  the UE silently dropped the MME's protected message (MAC failure)")
	}
	fmt.Println()

	// --- Countermeasure -------------------------------------------------
	fmt.Println("Countermeasure: enforce the optional TS 33.102 Annex C freshness limit L.")
	accepted, err := sqn.StaleReplayDemo(sqn.Config{INDBits: sqn.DefaultINDBits, FreshnessLimit: 1}, 31)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  with L=1 only %d of 31 stale vectors remain acceptable\n", accepted)
}
