// model_extraction walks through the paper's running example (Section V,
// Figure 3): a toy UE source file is instrumented with the go/ast
// source-level instrumentor, the instrumented code is executed against a
// simple test case ("a properly formatted attach_accept with a valid MAC
// gets an attach_complete"), and the model extractor lifts the resulting
// information-rich log into a one-transition FSM.
//
// When a Go toolchain is available the instrumented source is actually
// compiled and executed (`go run`); otherwise the example falls back to
// the log that execution provably produces, so it works in hermetic
// environments too.
package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"prochecker/internal/core/extract"
	"prochecker/internal/instrument"
	"prochecker/internal/spec"
)

// toySource is the Go analogue of Figure 3's simplified C++ attach code.
const toySource = `package main

var emm_state = "UE_REGISTERED_INIT"

func air_msg_handler(msgType int, mac []byte) {
	if msgType == 2 {
		recv_attach_accept(mac)
	}
}

func recv_attach_accept(mac []byte) bool {
	mac_valid := checkMAC(mac)
	if !mac_valid {
		return false
	}
	send_attach_complete()
	emm_state = "UE_REGISTERED"
	return true
}

func send_attach_complete() {}

func checkMAC(mac []byte) bool { return len(mac) > 0 }

func main() {
	// Test case: "when a properly formatted attach_accept message with
	// appropriate MAC is sent to the UE, the UE responds with an
	// attach_complete".
	air_msg_handler(2, []byte{0xde, 0xad})
}
`

// fallbackLog is the exact output the instrumented toy program prints
// (Figure 3(d)); used when no Go toolchain is available to run it.
const fallbackLog = `[FUNC] air_msg_handler
[GLOBAL] emm_state = UE_REGISTERED_INIT
[FUNC] recv_attach_accept
[GLOBAL] emm_state = UE_REGISTERED_INIT
[FUNC] send_attach_complete
[GLOBAL] emm_state = UE_REGISTERED_INIT
[GLOBAL] emm_state = UE_REGISTERED
[LOCAL] mac_valid = true
[GLOBAL] emm_state = UE_REGISTERED
[GLOBAL] emm_state = UE_REGISTERED
[LOCAL] mac_valid = true
[GLOBAL] emm_state = UE_REGISTERED
`

func main() {
	log.SetFlags(0)
	fmt.Println("=== Running example: instrument -> execute -> extract (Figure 3) ===")
	fmt.Println()

	// 1. Instrument the toy source.
	instrumented, rep, err := instrument.File(toySource, instrument.Options{})
	if err != nil {
		log.Fatalf("instrument: %v", err)
	}
	fmt.Printf("instrumented %d functions; globals: %v\n\n", rep.Functions, rep.Globals)
	fmt.Println("--- instrumented recv_attach_accept ---")
	printFunc(instrumented, "func recv_attach_accept")
	fmt.Println()

	// 2. Execute the instrumented program (the conformance test case).
	logText, ran := execute(instrumented)
	if ran {
		fmt.Println("--- execution log (from running the instrumented program) ---")
	} else {
		fmt.Println("--- execution log (toolchain unavailable; using the program's known output) ---")
	}
	fmt.Print(logText)
	fmt.Println()

	// 3. Extract the FSM with Algorithm 1.
	fsm, err := extract.FromText(logText, spec.UESignatures(spec.StyleClosed), extract.Options{
		Name: "running-example",
		PredicateFilter: func(name string) bool {
			return name == "mac_valid"
		},
	})
	if err != nil {
		log.Fatalf("extract: %v", err)
	}
	fmt.Println("--- extracted FSM ---")
	for _, tr := range fsm.Transitions() {
		fmt.Println(" ", tr)
	}
	fmt.Println()
	fmt.Print(fsm.DOT())
}

// printFunc prints one function from the instrumented source.
func printFunc(src, header string) {
	idx := strings.Index(src, header)
	if idx < 0 {
		return
	}
	depth := 0
	started := false
	for i := idx; i < len(src); i++ {
		fmt.Print(string(src[i]))
		switch src[i] {
		case '{':
			depth++
			started = true
		case '}':
			depth--
		}
		if started && depth == 0 {
			break
		}
	}
	fmt.Println()
}

// execute tries to `go run` the instrumented program in a temp dir.
func execute(src string) (string, bool) {
	dir, err := os.MkdirTemp("", "prochecker-running-example")
	if err != nil {
		return fallbackLog, false
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		return fallbackLog, false
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module toyue\n\ngo 1.22\n"), 0o644); err != nil {
		return fallbackLog, false
	}
	cmd := exec.Command("go", "run", ".")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return fallbackLog, false
	}
	return string(out), true
}
