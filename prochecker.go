// Package prochecker is an automated security and privacy analysis
// framework for 4G LTE protocol implementations, reproducing the system
// of Karim, Hussain and Bertino (ICDCS 2021).
//
// The pipeline mirrors the paper's architecture (Figure 2):
//
//  1. the implementation under test runs its functional conformance test
//     suite with source-level instrumentation, producing an
//     information-rich execution log;
//  2. the model extractor (Algorithm 1) lifts the log into a semantic
//     finite-state machine;
//  3. the adversarial model instrumentor composes the extracted UE
//     machine with a network-side model over public channels under a
//     Dolev-Yao adversary;
//  4. a symbolic model checker and a cryptographic protocol verifier
//     cooperate in a CEGAR loop to verify 62 security and privacy
//     properties, reporting realizable counterexamples as attacks;
//  5. attacks are validated end to end against the live implementation
//     on an in-process testbed.
//
// Basic use:
//
//	a, err := prochecker.Analyze(prochecker.SRSLTE)
//	...
//	res, err := a.CheckProperty("S06") // the P1 property
//	if res.AttackFound { fmt.Println(res.Detail) }
package prochecker

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"prochecker/internal/channel"
	"prochecker/internal/conformance"
	"prochecker/internal/core/props"
	"prochecker/internal/lint"
	"prochecker/internal/mc"
	"prochecker/internal/obs"
	"prochecker/internal/report"
	"prochecker/internal/resilience"
	"prochecker/internal/testbed"
	"prochecker/internal/ue"
)

// Implementation selects which 4G LTE stack behaviour profile to analyse.
type Implementation string

// The three implementations the paper evaluates. Conformant stands in
// for the closed-source commercial stack.
const (
	Conformant Implementation = "conformant"
	SRSLTE     Implementation = "srsLTE"
	OAI        Implementation = "OAI"
)

// Implementations lists all supported profiles.
func Implementations() []Implementation {
	return []Implementation{Conformant, SRSLTE, OAI}
}

// ParseImplementation resolves a user-supplied implementation name onto
// the canonical Implementation, matching case-insensitively ("srslte",
// "SRSLTE" and "srsLTE" all resolve to SRSLTE). Unknown names error
// with the valid set listed.
func ParseImplementation(name string) (Implementation, error) {
	for _, impl := range Implementations() {
		if strings.EqualFold(name, string(impl)) {
			return impl, nil
		}
	}
	valid := make([]string, 0, len(Implementations()))
	for _, impl := range Implementations() {
		valid = append(valid, string(impl))
	}
	return "", fmt.Errorf("prochecker: unknown implementation %q (want one of %s)",
		name, strings.Join(valid, " | "))
}

func (i Implementation) profile() (ue.Profile, error) {
	switch i {
	case Conformant:
		return ue.ProfileConformant, nil
	case SRSLTE:
		return ue.ProfileSRS, nil
	case OAI:
		return ue.ProfileOAI, nil
	default:
		return 0, fmt.Errorf("prochecker: unknown implementation %q", i)
	}
}

// PropertyInfo describes one catalogue property.
type PropertyInfo struct {
	ID     string
	Class  string // "security" or "privacy"
	Kind   string
	Text   string
	Source string
	// CommonLTEInspector is non-empty for the 14 Table II properties.
	CommonLTEInspector string
}

// Properties lists the full 62-property catalogue.
func Properties() []PropertyInfo {
	var out []PropertyInfo
	for _, p := range props.Catalogue() {
		out = append(out, PropertyInfo{
			ID:                 p.ID,
			Class:              string(p.Class),
			Kind:               string(p.Kind),
			Text:               p.Text,
			Source:             p.Source,
			CommonLTEInspector: p.CommonLTEInspector,
		})
	}
	return out
}

// PropertyResult is one property's verdict on one implementation.
type PropertyResult struct {
	ID          string
	Class       string
	Text        string
	Verified    bool
	AttackFound bool
	// Vacuous marks a model-checked property discharged by the static
	// vacuity pre-pass: the verdict is Verified without exploration
	// because no rule matching its trigger is statically fireable.
	Vacuous  bool
	Detail   string
	Duration time.Duration
	// AttackTrace lists the counterexample steps for model-checked
	// attacks (empty otherwise).
	AttackTrace []string
}

// Analysis is a built pipeline for one implementation: extracted model,
// threat composition and cached verdicts.
type Analysis struct {
	impl    Implementation
	model   *report.Model
	eval    *report.Evaluator
	workers int
	mcOpts  mc.Options
	faults  channel.FaultConfig
	obsv    *obs.Observer
}

// Option tunes an Analysis at construction time.
type Option func(*Analysis)

// WithWorkers bounds the property-level parallelism of CheckAll and the
// model checker's exploration pool. 0 (the default) means
// runtime.GOMAXPROCS(0); 1 forces a fully sequential run.
func WithWorkers(n int) Option {
	return func(a *Analysis) { a.workers = n }
}

// WithShards partitions the model checker's visited set and frontier
// across n hash-owned shards (rounded down to a power of two, capped at
// 64). Sharding changes throughput and memory locality only — verdicts,
// state ids and counterexample traces are byte-identical at any shard
// count.
func WithShards(n int) Option {
	return func(a *Analysis) { a.mcOpts.Shards = n }
}

// WithMemBudget bounds the model checker's resident exploration state
// bytes; beyond the budget, cold arena segments spill to an unlinked
// temp file so large compositions complete in bounded memory. <= 0 (the
// default) keeps everything resident.
func WithMemBudget(bytes int64) Option {
	return func(a *Analysis) { a.mcOpts.MemBudget = bytes }
}

// WithSnapshotDir checkpoints model-checker exploration at level
// boundaries into dir and resumes from the newest valid snapshot on the
// next run of the same model — a killed analysis picks up where its
// last completed level left off instead of re-exploring.
func WithSnapshotDir(dir string) Option {
	return func(a *Analysis) { a.mcOpts.SnapshotDir = dir }
}

// WithFaults runs the conformance suite that feeds model extraction
// under the given seeded fault-injection adversary, so the analysed
// model reflects the implementation's behaviour on a hostile link. The
// zero config (the default) keeps the link benign. Two analyses with
// equal configs extract byte-identical models — fault runs are
// reproducible per seed.
func WithFaults(cfg channel.FaultConfig) Option {
	return func(a *Analysis) { a.faults = cfg }
}

// WithObserver attaches an observability recorder: every pipeline phase
// (conformance run, extraction, composition, each property check, CEGAR
// iterations, model-checker explorations, testbed replays) records spans
// and metrics on it, available afterwards as o.Manifest() or live over
// obs.Serve. A nil observer — the default — disables instrumentation at
// the cost of one pointer check per phase.
func WithObserver(o *obs.Observer) Option {
	return func(a *Analysis) { a.obsv = o }
}

// WithNoVacuityPrune disables the static vacuity pre-pass: every
// model-checked property is explored even when the dataflow layer
// proves its trigger statically unreachable. The default (pruning on)
// returns identical verdicts for non-vacuous properties and verifies
// vacuous ones without exploration; this escape hatch is for auditing
// the pruner itself.
func WithNoVacuityPrune() Option {
	return func(a *Analysis) { a.mcOpts.NoVacuityPrune = true }
}

// Observer returns the recorder attached with WithObserver (nil when
// observability is off).
func (a *Analysis) Observer() *obs.Observer { return a.obsv }

// obsContext threads the analysis observer into ctx unless the caller
// already carries one (e.g. nested calls from an instrumented phase).
func (a *Analysis) obsContext(ctx context.Context) context.Context {
	if a.obsv == nil || obs.FromContext(ctx) != nil {
		return ctx
	}
	return obs.NewContext(ctx, a.obsv)
}

// Analyze runs the extraction pipeline (conformance suite ->
// instrumentation log -> Algorithm 1 -> threat composition) for the
// given implementation.
func Analyze(impl Implementation, opts ...Option) (*Analysis, error) {
	return AnalyzeContext(context.Background(), impl, opts...)
}

// AnalyzeContext is Analyze with cancellation/deadline support threaded
// through the conformance run. A cancelled build returns an error
// wrapping resilience.ErrCancelled (see ErrCancelled).
func AnalyzeContext(ctx context.Context, impl Implementation, opts ...Option) (*Analysis, error) {
	profile, err := impl.profile()
	if err != nil {
		return nil, err
	}
	a := &Analysis{impl: impl}
	for _, opt := range opts {
		opt(a)
	}
	ctx, span := obs.Start(a.obsContext(ctx), "analyze", obs.A("impl", string(impl)))
	runOpts := conformance.RunOptions{}
	if a.faults.Enabled() {
		span.SetAttr("faults", a.faults.String())
		runOpts.Adversary = a.faults.AdversaryFactory()
	}
	m, err := report.BuildModelOptions(ctx, profile, runOpts)
	span.EndErr(err)
	if err != nil {
		return nil, fmt.Errorf("prochecker: %w", err)
	}
	a.model = m
	a.eval = report.NewEvaluator(m)
	a.eval.SetWorkers(a.workers)
	a.eval.SetMC(a.mcOpts)
	return a, nil
}

func (a *Analysis) workerCount() int {
	if a.workers > 0 {
		return a.workers
	}
	return runtime.GOMAXPROCS(0)
}

// ErrCancelled marks analyses cut short by context cancellation or
// deadline — a distinct ending from an inconclusive (bound-hit) verdict.
// Test with errors.Is.
var ErrCancelled = resilience.ErrCancelled

// Implementation returns the analysed profile.
func (a *Analysis) Implementation() Implementation { return a.impl }

// ModelSize reports the extracted FSM's dimensions (states, conditions,
// actions, transitions).
func (a *Analysis) ModelSize() (states, conditions, actions, transitions int) {
	return a.model.FSM.Size()
}

// FSMDOT renders the extracted FSM in Graphviz format.
func (a *Analysis) FSMDOT() string { return a.model.FSM.DOT() }

// SMV renders the threat-instrumented model in nuXmv-style syntax, like
// the paper's model generator.
func (a *Analysis) SMV() string { return a.model.Composed.System.SMV() }

// Coverage summarises the NAS-layer coverage the conformance run
// achieved.
func (a *Analysis) Coverage() string { return a.model.Suite.Coverage.String() }

// Log renders the information-rich execution log the model was extracted
// from.
func (a *Analysis) Log() string { return a.model.Suite.Log.Render() }

// LintReport returns the static pre-check diagnostics computed while the
// model was built: the PC0xx findings over the extracted FSM and the
// threat composition.
func (a *Analysis) LintReport() *lint.Report { return a.model.Lint }

// LintGate enforces a severity policy on the lint report: it returns an
// error wrapping resilience.ErrModelLint (CLI exit code 6) when any
// diagnostic is at or above min, and nil otherwise. Callers that should
// not check a malformed model — CI, campaign gating — run it between
// Analyze and the first property check.
func (a *Analysis) LintGate(min lint.Severity) error {
	diags := a.LintReport().AtLeast(min)
	if len(diags) == 0 {
		return nil
	}
	gated := (&lint.Report{Diagnostics: diags}).Codes()
	return fmt.Errorf("prochecker: model lint reported %d diagnostic(s) at or above %s (%s): %w",
		len(diags), min, strings.Join(gated, ","), resilience.ErrModelLint)
}

// CheckProperty verifies one catalogue property by ID.
func (a *Analysis) CheckProperty(id string) (PropertyResult, error) {
	return a.CheckPropertyContext(context.Background(), id)
}

// CheckPropertyContext is CheckProperty with cancellation threaded into
// the CEGAR loop and the live equivalence scenarios.
func (a *Analysis) CheckPropertyContext(ctx context.Context, id string) (PropertyResult, error) {
	p, ok := props.ByID(id)
	if !ok {
		return PropertyResult{}, fmt.Errorf("prochecker: unknown property %q", id)
	}
	v, err := a.eval.EvaluateContext(a.obsContext(ctx), p)
	if err != nil {
		return PropertyResult{}, fmt.Errorf("prochecker: %w", err)
	}
	return PropertyResult{
		ID:          p.ID,
		Class:       string(p.Class),
		Text:        p.Text,
		Verified:    v.Verified,
		AttackFound: v.Detected,
		Vacuous:     v.Vacuous,
		Detail:      v.Detail,
		Duration:    v.Duration,
	}, nil
}

// CheckAll verifies the complete 62-property catalogue with graceful
// degradation: a property whose evaluation errors no longer truncates
// the run — its failure is collected, the remaining properties still
// run, and every completed PropertyResult is returned alongside the
// aggregated error (a resilience.ErrorList when several failed).
func (a *Analysis) CheckAll() ([]PropertyResult, error) {
	return a.CheckAllContext(context.Background())
}

// CheckAllContext is CheckAll with cancellation: the catalogue walk
// stops promptly once ctx is done, returning the results completed so
// far together with an error wrapping ErrCancelled. Properties are
// evaluated over a bounded worker pool (WithWorkers, default
// GOMAXPROCS); completed results come back in catalogue order, same as
// a sequential walk.
func (a *Analysis) CheckAllContext(ctx context.Context) ([]PropertyResult, error) {
	catalogue := props.Catalogue()
	ctx, span := obs.Start(a.obsContext(ctx), "check.catalogue",
		obs.A("properties", fmt.Sprint(len(catalogue))))
	type slot struct {
		res  PropertyResult
		err  error
		done bool
	}
	slots := make([]slot, len(catalogue))
	workers := a.workerCount()
	if workers > len(catalogue) {
		workers = len(catalogue)
	}

	if workers <= 1 {
		for i, p := range catalogue {
			if ctx.Err() != nil {
				break
			}
			slots[i].res, slots[i].err = a.CheckPropertyContext(ctx, p.ID)
			slots[i].done = true
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					slots[i].res, slots[i].err = a.CheckPropertyContext(ctx, catalogue[i].ID)
					slots[i].done = true
				}
			}()
		}
		for i := range catalogue {
			if ctx.Err() != nil {
				break
			}
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	var out []PropertyResult
	var errs resilience.Collector
	for i := range catalogue {
		s := slots[i]
		switch {
		case !s.done || resilience.Cancelled(s.err):
			// Accounted for by the single catalogue-stopped entry below.
		case s.err == nil:
			out = append(out, s.res)
		default:
			errs.Add(s.err)
		}
	}
	if ctx.Err() != nil {
		errs.Add(fmt.Errorf("prochecker: catalogue stopped after %d of %d properties: %w",
			len(out), len(catalogue), ErrCancelled))
	}
	span.SetAttr("completed", fmt.Sprint(len(out)))
	span.EndErr(errs.Err())
	return out, errs.Err()
}

// AttackMatrix regenerates Table I for the given implementations (all
// three when none are named), returning the rendered matrix.
func AttackMatrix(impls ...Implementation) (string, error) {
	if len(impls) == 0 {
		impls = Implementations()
	}
	profiles := make([]ue.Profile, 0, len(impls))
	for _, i := range impls {
		p, err := i.profile()
		if err != nil {
			return "", err
		}
		profiles = append(profiles, p)
	}
	rows, err := report.TableI(profiles)
	if err != nil {
		return "", fmt.Errorf("prochecker: %w", err)
	}
	return report.RenderTableI(rows, profiles), nil
}

// P1Validation reports the end-to-end testbed validation of the
// service-disruption attack.
type P1Validation = testbed.P1Result

// ValidateP1 replays the Figure 4 attack against the live
// implementation.
func ValidateP1(impl Implementation) (P1Validation, error) {
	p, err := impl.profile()
	if err != nil {
		return P1Validation{}, err
	}
	res, err := testbed.ValidateP1(p)
	if err != nil {
		return P1Validation{}, fmt.Errorf("prochecker: %w", err)
	}
	return res, nil
}

// P3Validation reports the selective-denial testbed validation.
type P3Validation = testbed.P3Result

// ValidateP3 replays the selective security-procedure denial against the
// live implementation.
func ValidateP3(impl Implementation) (P3Validation, error) {
	p, err := impl.profile()
	if err != nil {
		return P3Validation{}, err
	}
	res, err := testbed.ValidateP3(p)
	if err != nil {
		return P3Validation{}, fmt.Errorf("prochecker: %w", err)
	}
	return res, nil
}
